package table

import (
	"sync"
	"testing"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/storage"
	"cinderella/internal/synopsis"
)

// tierFixture builds a table with two well-separated partitions: ~n
// entities on attrs {1,2,3} and ~n on attrs {50,51}. Returns the table,
// its stats, and the partition id holding the {50,51} family.
func tierFixture(t *testing.T, n int) (*Table, *storage.Stats, core.PartitionID) {
	t.Helper()
	stats := &storage.Stats{}
	tbl := New(Config{
		Partitioner: core.NewCinderella(core.Config{Weight: 0.5, MaxSize: 1000}),
		Stats:       stats,
	})
	for i := 0; i < n; i++ {
		tbl.Insert(mkEnt(1, 2, 3))
		tbl.Insert(mkEnt(50, 51))
	}
	cold := core.PartitionID(0)
	for _, pv := range tbl.Partitions() {
		if synopsis.Intersects(pv.Synopsis, synopsis.Of(50)) {
			cold = pv.ID
		}
	}
	if cold == 0 {
		t.Fatal("fixture: no partition holds attr 50")
	}
	return tbl, stats, cold
}

func resultIDs(res []Result) map[core.EntityID]bool {
	out := make(map[core.EntityID]bool, len(res))
	for _, r := range res {
		out[r.ID] = true
	}
	return out
}

func TestFreezeThawRoundTrip(t *testing.T) {
	tbl, _, coldPID := tierFixture(t, 50)
	before := tbl.Select(50, 51)
	if len(before) != 50 {
		t.Fatalf("setup: Select(50,51) = %d hits", len(before))
	}

	if !tbl.FreezePartition(coldPID) {
		t.Fatal("FreezePartition refused")
	}
	if tbl.FreezePartition(coldPID) {
		t.Fatal("double freeze succeeded")
	}
	if tbl.FreezePartition(9999) {
		t.Fatal("freeze of unknown partition succeeded")
	}

	// Both read modes return the identical result set from the cold tier.
	for _, locked := range []bool{false, true} {
		tbl.SetLockedReads(locked)
		after := tbl.Select(50, 51)
		if len(after) != len(before) {
			t.Fatalf("locked=%v: %d hits after freeze, want %d", locked, len(after), len(before))
		}
		want := resultIDs(before)
		for _, r := range after {
			if !want[r.ID] {
				t.Fatalf("locked=%v: unexpected hit %d", locked, r.ID)
			}
			if v, ok := r.Entity.Get(50); !ok || v.AsInt() != 50 {
				t.Fatalf("locked=%v: entity %d content damaged", locked, r.ID)
			}
		}
	}
	tbl.SetLockedReads(false)

	// Point reads work against the frozen partition.
	anyID := before[0].ID
	if e, ok := tbl.Get(anyID); !ok || e == nil {
		t.Fatalf("Get(%d) failed on frozen partition", anyID)
	}

	// The tier report sees one frozen, compressed partition.
	var frozen int
	for _, ts := range tbl.TierStates() {
		if !ts.Frozen {
			continue
		}
		frozen++
		if ts.Partition != coldPID {
			t.Fatalf("frozen partition %d, want %d", ts.Partition, coldPID)
		}
		if ts.ResidentBytes >= ts.RawBytes {
			t.Fatalf("no compression: resident %d >= raw %d", ts.ResidentBytes, ts.RawBytes)
		}
	}
	if frozen != 1 {
		t.Fatalf("%d frozen partitions, want 1", frozen)
	}
	if f, th := tbl.TierCounters(); f != 1 || th != 0 {
		t.Fatalf("tier counters = %d/%d, want 1/0", f, th)
	}

	if !tbl.ThawPartition(coldPID) {
		t.Fatal("ThawPartition refused")
	}
	if tbl.ThawPartition(coldPID) {
		t.Fatal("double thaw succeeded")
	}
	if got := tbl.Select(50, 51); len(got) != len(before) {
		t.Fatalf("%d hits after thaw, want %d", len(got), len(before))
	}
	if f, th := tbl.TierCounters(); f != 1 || th != 1 {
		t.Fatalf("tier counters = %d/%d, want 1/1", f, th)
	}
}

// TestFrozenPartitionPrunesWithoutColdBytes is the tentpole's central
// claim: a query the synopsis prunes never decompresses a cold block,
// while a query that needs the frozen partition pays the (visible)
// cold-read charge.
func TestFrozenPartitionPrunesWithoutColdBytes(t *testing.T) {
	tbl, stats, coldPID := tierFixture(t, 40)
	if !tbl.FreezePartition(coldPID) {
		t.Fatal("freeze refused")
	}

	for _, locked := range []bool{false, true} {
		tbl.SetLockedReads(locked)
		stats.Reset()
		if got := tbl.Select(1); len(got) != 40 {
			t.Fatalf("locked=%v: Select(1) = %d hits", locked, len(got))
		}
		if cp, cb := stats.ColdSnapshot(); cp != 0 || cb != 0 {
			t.Fatalf("locked=%v: pruned query read %d cold pages / %d cold bytes", locked, cp, cb)
		}

		// SelectWhere prunes by synopsis + zone maps, still zero cold I/O.
		res, rep := tbl.SelectWhere([]Pred{{Attr: 2, Op: Ge, Value: entity.Int(0)}})
		if len(res) != 40 || rep.PartitionsPruned == 0 {
			t.Fatalf("locked=%v: SelectWhere = %d hits, pruned %d", locked, len(res), rep.PartitionsPruned)
		}
		if cp, cb := stats.ColdSnapshot(); cp != 0 || cb != 0 {
			t.Fatalf("locked=%v: pruned SelectWhere read %d cold pages / %d cold bytes", locked, cp, cb)
		}

		// A query that needs the frozen partition still answers exactly.
		if got := tbl.Select(50); len(got) != 40 {
			t.Fatalf("locked=%v: Select(50) = %d hits", locked, len(got))
		}
	}
	tbl.SetLockedReads(false)

	// A scan that needs the cold tier charges the cold counters. Freeze
	// afresh so the per-segment resident-block cache is empty and the
	// decompression is guaranteed to happen inside the measured window.
	tbl.ThawPartition(coldPID)
	if !tbl.FreezePartition(coldPID) {
		t.Fatal("re-freeze refused")
	}
	stats.Reset()
	if got := tbl.Select(50); len(got) != 40 {
		t.Fatalf("Select(50) = %d hits", len(got))
	}
	if cp, cb := stats.ColdSnapshot(); cp == 0 || cb == 0 {
		t.Fatalf("cold scan charged %d pages / %d bytes, want > 0", cp, cb)
	}
}

func TestMutationsThawFrozenPartition(t *testing.T) {
	tbl, _, coldPID := tierFixture(t, 30)
	victims := tbl.Select(50, 51)
	if !tbl.FreezePartition(coldPID) {
		t.Fatal("freeze refused")
	}

	// Delete reaches the frozen partition and transparently thaws it.
	if !tbl.Delete(victims[0].ID) {
		t.Fatal("Delete on frozen partition failed")
	}
	if got := len(tbl.FrozenPartitions()); got != 0 {
		t.Fatalf("%d frozen partitions after delete, want 0", got)
	}
	if _, th := tbl.TierCounters(); th != 1 {
		t.Fatalf("thaws = %d, want 1", th)
	}
	if got := tbl.Select(50, 51); len(got) != len(victims)-1 {
		t.Fatalf("%d hits after delete, want %d", len(got), len(victims)-1)
	}

	// Update against a re-frozen partition thaws it too.
	if !tbl.FreezePartition(coldPID) {
		t.Fatal("re-freeze refused")
	}
	if !tbl.Update(victims[1].ID, mkEnt(50, 51)) {
		t.Fatal("Update on frozen partition failed")
	}
	if got := len(tbl.FrozenPartitions()); got != 0 {
		t.Fatalf("%d frozen partitions after update, want 0", got)
	}
	if got := tbl.Select(50, 51); len(got) != len(victims)-1 {
		t.Fatalf("%d hits after update, want %d", len(got), len(victims)-1)
	}
}

// TestVacuumSkipsFrozenPartitions: table-wide vacuum must leave the
// cold tier alone (it was vacuumed at freeze) and not lose any rows.
func TestVacuumSkipsFrozenPartitions(t *testing.T) {
	tbl, _, coldPID := tierFixture(t, 30)
	hot := tbl.Select(1)
	for i := 0; i < 10; i++ {
		tbl.Delete(hot[i].ID)
	}
	if !tbl.FreezePartition(coldPID) {
		t.Fatal("freeze refused")
	}
	tbl.Vacuum()
	if got := len(tbl.FrozenPartitions()); got != 1 {
		t.Fatalf("%d frozen partitions after vacuum, want 1", got)
	}
	if got := len(tbl.Select(50, 51)); got != 30 {
		t.Fatalf("%d cold hits after vacuum, want 30", got)
	}
	if got := len(tbl.Select(1)); got != 20 {
		t.Fatalf("%d hot hits after vacuum, want 20", got)
	}
}

// TestTierTransitionsUnderConcurrentReaders drives freeze/thaw cycles
// against lock-free snapshot readers; run with -race this doubles as
// the tier's publication-safety test.
func TestTierTransitionsUnderConcurrentReaders(t *testing.T) {
	tbl, _, coldPID := tierFixture(t, 40)
	probe := tbl.Select(50, 51)[0].ID

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := len(tbl.Select(50, 51)); got != 40 {
					panic("reader observed partial freeze")
				}
				if _, ok := tbl.Get(probe); !ok {
					panic("point read lost during tier transition")
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if !tbl.FreezePartition(coldPID) {
			t.Fatal("freeze refused mid-loop")
		}
		if !tbl.ThawPartition(coldPID) {
			t.Fatal("thaw refused mid-loop")
		}
	}
	close(stop)
	wg.Wait()
	if got := len(tbl.ScanAll()); got != 80 {
		t.Fatalf("%d entities after transition storm, want 80", got)
	}
}
