package table

import (
	"math/rand"
	"sync"
	"testing"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/obs"
	"cinderella/internal/synopsis"
)

// spanHeatKey identifies one (shard, partition) cell when folding span
// trees into heat-map-shaped totals.
type spanHeatKey struct {
	shard int32
	pid   uint64
}

// spanHeatTotals aggregates PartSpans the way heat.note does.
type spanHeatTotals struct {
	queries, read, relevant, decoded, skipped int64
	bytesRead, bytesRelevant, bytesSkipped    int64
}

func foldParts(into map[spanHeatKey]*spanHeatTotals, parts []obs.PartSpan) {
	for _, p := range parts {
		k := spanHeatKey{shard: p.Shard, pid: p.Partition}
		t := into[k]
		if t == nil {
			t = &spanHeatTotals{}
			into[k] = t
		}
		t.queries++
		t.read += p.Scanned
		t.relevant += p.Returned
		t.decoded += p.Decoded
		t.skipped += p.Skipped
		t.bytesRead += p.BytesRead
		t.bytesRelevant += p.BytesRelevant
		t.bytesSkipped += p.BytesSkipped
	}
}

// checkHeatMatchesSpans asserts the heat map equals the fold of the
// given per-query span totals, cell for cell in both directions — the
// two views are fed from the same PartSpan arrays, so any drift means a
// query was dropped or double-counted somewhere in the trace plumbing.
func checkHeatMatchesSpans(t *testing.T, heat []obs.PartitionHeat, fromSpans map[spanHeatKey]*spanHeatTotals) {
	t.Helper()
	seen := map[spanHeatKey]bool{}
	for _, h := range heat {
		k := spanHeatKey{shard: h.Shard, pid: h.Partition}
		seen[k] = true
		want := fromSpans[k]
		if want == nil {
			t.Errorf("heat has (shard %d, partition %d) but no span touched it", h.Shard, h.Partition)
			continue
		}
		if h.Queries != want.queries || h.RecordsRead != want.read ||
			h.RecordsRelevant != want.relevant || h.RecordsDecoded != want.decoded ||
			h.RecordsSkipped != want.skipped || h.BytesRead != want.bytesRead ||
			h.BytesRelevant != want.bytesRelevant || h.BytesSkipped != want.bytesSkipped {
			t.Errorf("(shard %d, partition %d): heat %+v != span fold %+v", h.Shard, h.Partition, h, *want)
		}
	}
	for k := range fromSpans {
		if !seen[k] {
			t.Errorf("spans touched (shard %d, partition %d) but heat has no row", k.shard, k.pid)
		}
	}
}

// TestTraceHeatMatchesSpansUnderWrites races continuous writers against
// traced Select/SelectWhere/ScanAll readers on one Table and then
// requires the always-on heat map to equal the sum of the per-query span
// totals exactly. With TraceSampleEvery=1 and a ring big enough for the
// whole workload, every query's span is retained, so the heat map —
// which is fed from the same PartSpan arrays — must agree cell for cell.
// Run under -race this is also the data-race regression test for the
// span fan-in and the heat map's atomic adds.
func TestTraceHeatMatchesSpansUnderWrites(t *testing.T) {
	const readers, queriesEach = 4, 40
	total := readers * queriesEach
	reg := obs.New(obs.Options{TraceSampleEvery: 1, TraceRecentCap: total})
	tbl := New(Config{
		Partitioner: core.NewCinderella(core.Config{Weight: 0.5, MaxSize: 64}),
		Obs:         reg,
	})

	// Seed enough structure that queries touch several partitions.
	rng := rand.New(rand.NewSource(41))
	insert := func(rng *rand.Rand) {
		e := &entity.Entity{}
		a := 8 + rng.Intn(64)
		e.Set(a, entity.Int(int64(a)))
		e.Set(1, entity.Float(float64(rng.Intn(1000))))
		tbl.Insert(e)
	}
	for i := 0; i < 800; i++ {
		insert(rng)
	}

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				insert(rng)
			}
		}(int64(100 + w))
	}

	var rd sync.WaitGroup
	for r := 0; r < readers; r++ {
		rd.Add(1)
		go func(seed int64) {
			defer rd.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < queriesEach; i++ {
				switch i % 3 {
				case 0:
					tbl.Select(8+rng.Intn(64), 8+rng.Intn(64))
				case 1:
					tbl.SelectWhere([]Pred{{Attr: 1, Op: Lt, Value: entity.Float(float64(rng.Intn(1000)))}})
				case 2:
					tbl.ScanAll()
				}
			}
		}(int64(r))
	}
	rd.Wait()
	close(stop)
	writers.Wait()

	spans := reg.RecentTraces()
	if len(spans) != total {
		t.Fatalf("recent ring holds %d spans, want all %d queries", len(spans), total)
	}
	if got := reg.Counter(obs.CTraceSampled); got != int64(total) {
		t.Fatalf("CTraceSampled = %d, want %d", got, total)
	}

	fromSpans := map[spanHeatKey]*spanHeatTotals{}
	for _, sp := range spans {
		if len(sp.Children) != 0 {
			t.Fatalf("unsharded span has children: %+v", sp)
		}
		if sp.Shard != -1 {
			t.Fatalf("unsharded span shard = %d, want -1", sp.Shard)
		}
		foldParts(fromSpans, sp.Parts)
	}
	checkHeatMatchesSpans(t, reg.HeatSnapshot(), fromSpans)

	// Sanity: the workload actually scanned data (the equality above is
	// not vacuous) — ScanAll alone guarantees this.
	var read int64
	for _, tt := range fromSpans {
		read += tt.read
	}
	if read == 0 {
		t.Fatal("no records scanned by any traced query")
	}

	// Select a second time with no concurrent load: the query synopsis
	// description must be recorded on sampled spans (WantDetail path).
	tbl.SelectSynopsis(synopsis.Of(8, 9))
	recent := reg.RecentTraces()
	last := recent[len(recent)-1]
	if last.Query == "" {
		t.Errorf("sampled span is missing its query description: %+v", last)
	}
}
