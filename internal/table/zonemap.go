package table

import (
	"fmt"
	"sort"

	"cinderella/internal/core"
	"cinderella/internal/entity"
	"cinderella/internal/obs"
	"cinderella/internal/storage"
	"cinderella/internal/synopsis"
)

// The paper's future work names "further aspects of physical database
// design like caching or indexing". Zone maps are the natural first
// index for a partitioned universal table: per partition and attribute,
// the min/max of stored values. Value-predicate queries can then prune
// partitions both by attribute synopsis (the paper's mechanism) and by
// value range.
//
// Zone maps are maintained additively: inserts and move-ins widen them;
// deletes and move-outs do not shrink them (a conservative over-
// approximation that never prunes wrongly). RebuildZoneMaps recomputes
// exact bounds, e.g. after heavy churn.

// zoneEntry is the value range of one attribute within one partition.
type zoneEntry struct {
	hasNum         bool
	minNum, maxNum float64
	hasStr         bool
	minStr, maxStr string
}

func (z *zoneEntry) widen(v entity.Value) {
	switch v.Kind() {
	case entity.KindInt, entity.KindFloat:
		f := v.AsFloat()
		if !z.hasNum || f < z.minNum {
			z.minNum = f
		}
		if !z.hasNum || f > z.maxNum {
			z.maxNum = f
		}
		z.hasNum = true
	case entity.KindString:
		s := v.AsString()
		if !z.hasStr || s < z.minStr {
			z.minStr = s
		}
		if !z.hasStr || s > z.maxStr {
			z.maxStr = s
		}
		z.hasStr = true
	}
}

// CmpOp is a comparison operator for value predicates.
type CmpOp uint8

// Supported predicate operators.
const (
	Eq CmpOp = iota
	Lt
	Le
	Gt
	Ge
)

// String renders the operator.
func (op CmpOp) String() string {
	switch op {
	case Eq:
		return "="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Pred is one value predicate: attr op value. An entity satisfies the
// predicate only if it instantiates the attribute (SQL-like null
// semantics: comparisons with an absent attribute are false).
type Pred struct {
	Attr  int
	Op    CmpOp
	Value entity.Value
}

// evalValue applies the predicate to a concrete value.
func (p Pred) evalValue(v entity.Value) bool {
	// Numeric predicates apply to numeric values, string predicates to
	// strings; kind mismatches are false.
	switch p.Value.Kind() {
	case entity.KindInt, entity.KindFloat:
		if v.Kind() != entity.KindInt && v.Kind() != entity.KindFloat {
			return false
		}
		a, b := v.AsFloat(), p.Value.AsFloat()
		return cmpMatch(p.Op, compareFloat(a, b))
	case entity.KindString:
		if v.Kind() != entity.KindString {
			return false
		}
		return cmpMatch(p.Op, compareString(v.AsString(), p.Value.AsString()))
	}
	return false
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpMatch(op CmpOp, c int) bool {
	switch op {
	case Eq:
		return c == 0
	case Lt:
		return c < 0
	case Le:
		return c <= 0
	case Gt:
		return c > 0
	case Ge:
		return c >= 0
	}
	return false
}

// overlapZone reports whether any value inside the zone can satisfy the
// predicate; false allows pruning the partition.
func (p Pred) overlapZone(z *zoneEntry) bool {
	if z == nil {
		return false
	}
	switch p.Value.Kind() {
	case entity.KindInt, entity.KindFloat:
		if !z.hasNum {
			return false
		}
		b := p.Value.AsFloat()
		switch p.Op {
		case Eq:
			return z.minNum <= b && b <= z.maxNum
		case Lt:
			return z.minNum < b
		case Le:
			return z.minNum <= b
		case Gt:
			return z.maxNum > b
		case Ge:
			return z.maxNum >= b
		}
	case entity.KindString:
		if !z.hasStr {
			return false
		}
		b := p.Value.AsString()
		switch p.Op {
		case Eq:
			return z.minStr <= b && b <= z.maxStr
		case Lt:
			return z.minStr < b
		case Le:
			return z.minStr <= b
		case Gt:
			return z.maxStr > b
		case Ge:
			return z.maxStr >= b
		}
	}
	return false
}

// zoneWiden updates the zone maps of pid with an entity's fields.
// Callers hold the table write lock; zmu additionally excludes lock-free
// readers consulting the maps through zonesOverlap.
func (t *Table) zoneWiden(pid core.PartitionID, e *entity.Entity) {
	t.zmu.Lock()
	defer t.zmu.Unlock()
	zm := t.zones[pid]
	if zm == nil {
		zm = make(map[int]*zoneEntry)
		t.zones[pid] = zm
	}
	widenInto(zm, e)
}

func widenInto(zm map[int]*zoneEntry, e *entity.Entity) {
	for _, f := range e.Fields() {
		z := zm[f.Attr]
		if z == nil {
			z = &zoneEntry{}
			zm[f.Attr] = z
		}
		z.widen(f.Value)
	}
}

// RebuildZoneMaps recomputes exact zone maps for every partition by
// scanning the data. Useful after many deletes or updates have made the
// additive maps loose. The fresh maps are swapped in atomically under
// zmu, and the zone generation is bumped so snapshot SelectWhere calls
// that pruned against the old maps re-prune (zones only ever widen
// between rebuilds, which keeps them conservative for any snapshot; a
// rebuild is the one event that can shrink them).
func (t *Table) RebuildZoneMaps() {
	t.mu.Lock()
	defer t.mu.Unlock()
	fresh := make(map[core.PartitionID]map[int]*zoneEntry)
	for pid, seg := range t.segs {
		zm := make(map[int]*zoneEntry)
		seg.Scan(func(_ storage.RecordID, rec []byte) bool {
			_, e, err := decodeRecord(rec)
			if err != nil {
				panic("table: corrupt record during zone rebuild: " + err.Error())
			}
			widenInto(zm, e)
			return true
		})
		fresh[pid] = zm
	}
	t.zmu.Lock()
	// Frozen partitions carry their existing maps over untouched: they
	// are immutable (no churn to tighten away), and rescanning them here
	// would decompress the whole cold tier for nothing.
	for pid := range t.cold {
		if zm := t.zones[pid]; zm != nil {
			fresh[pid] = zm
		}
	}
	t.zones = fresh
	t.zmu.Unlock()
	t.zoneGen.Add(1)
}

// predNeed validates preds and returns the set of predicate attributes.
// An entity lacking any of them cannot satisfy the conjunction (SQL null
// semantics), so the set prunes both partitions (against the partition
// synopsis) and individual records (against the sidecar).
func predNeed(preds []Pred) *synopsis.Set {
	if len(preds) == 0 {
		panic("table: SelectWhere needs at least one predicate")
	}
	need := synopsis.New(0)
	for _, p := range preds {
		if p.Attr < 0 {
			panic(fmt.Sprintf("table: negative attribute %d", p.Attr))
		}
		need.Add(p.Attr)
	}
	return need
}

// SelectWhere returns entities satisfying ALL predicates (conjunction).
// Partitions are pruned when (a) their attribute synopsis misses any
// predicate attribute or (b) any predicate cannot overlap the
// partition's value zone for that attribute. Within surviving
// partitions, snapshot scans additionally skip — without decoding —
// records whose sidecar synopsis misses a predicate attribute.
func (t *Table) SelectWhere(preds []Pred) ([]Result, QueryReport) {
	return t.SelectWhereSpanned(preds, t.observer().StartQuery(obs.KindSelectWhere))
}

// SelectWhereSpanned runs SelectWhere filling an externally created
// query span (a fan-out child or a forced trace); sp may be nil.
func (t *Table) SelectWhereSpanned(preds []Pred, sp *obs.QuerySpan) ([]Result, QueryReport) {
	if sp.WantDetail() {
		sp.SetQuery(t.describeWhere(preds))
	}
	if t.lockedReads.Load() {
		return t.selectWhereLocked(preds, sp)
	}
	return t.selectWhereSnap(preds, sp)
}

func (t *Table) selectWhereLocked(preds []Pred, sp *obs.QuerySpan) ([]Result, QueryReport) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	start := t.obsStart()
	need := predNeed(preds)

	var rep QueryReport
	pids := t.sortedPIDs()
	rep.PartitionsTotal = len(pids)
	survivors := pids[:0]
	for _, pid := range pids {
		syn := t.attrSyn[pid]
		if syn == nil || !synopsis.Subset(need, syn) {
			rep.PartitionsPruned++
			sp.Prune(uint64(pid), obs.PruneSynopsisMissing)
			continue
		}
		if !t.zonesOverlap(pid, preds) {
			rep.PartitionsPruned++
			sp.Prune(uint64(pid), obs.PruneZoneMiss)
			continue
		}
		survivors = append(survivors, pid)
	}
	rep.PartitionsTouched = len(survivors)

	parts := make([]partScan, len(survivors))
	t.runTimedScans(parts, sp.TimeScans(), func(i int) partScan {
		return t.scanPartitionWhere(survivors[i], preds)
	})
	out := mergeScans(parts, &rep)

	ns := lapNs(start)
	t.noteQuery(rep, ns)
	t.noteScans(sp, parts, rep, ns)
	return out, rep
}

func (t *Table) selectWhereSnap(preds []Pred, sp *obs.QuerySpan) ([]Result, QueryReport) {
	start := t.obsStart()
	need := predNeed(preds)

	// Zone maps shrink only when RebuildZoneMaps swaps in fresh ones; the
	// generation check makes sure the maps used for pruning were current
	// for the captured snapshot (retry on the rare race with a rebuild).
	var snap tableSnap
	var survivors []*partSnap
	var rep QueryReport
	for {
		gen := t.zoneGen.Load()
		snap = t.capture()
		rep = QueryReport{PartitionsTotal: len(snap.parts)}
		survivors = survivors[:0]
		sp.ResetPrunes() // a zone-rebuild retry re-prunes from scratch
		for _, ps := range snap.parts {
			if ps.syn == nil || !synopsis.Subset(need, ps.syn) {
				rep.PartitionsPruned++
				sp.Prune(uint64(ps.pid), obs.PruneSynopsisMissing)
				continue
			}
			if !t.zonesOverlap(ps.pid, preds) {
				rep.PartitionsPruned++
				sp.Prune(uint64(ps.pid), obs.PruneZoneMiss)
				continue
			}
			survivors = append(survivors, ps)
		}
		if t.zoneGen.Load() == gen {
			break
		}
	}
	rep.PartitionsTouched = len(survivors)

	parts := make([]partScan, len(survivors))
	useBitmap := t.bitmapScans.Load()
	var prog storage.BitmapProgram
	if useBitmap {
		prog = whereProgram(need)
	}
	t.runTimedScans(parts, sp.TimeScans(), func(i int) partScan {
		if useBitmap {
			if sc, ok := scanSnapPartWhereBitmap(survivors[i], preds, prog); ok {
				return sc
			}
		}
		return scanSnapPartWhere(survivors[i], preds, need)
	})
	out := mergeScans(parts, &rep)

	ns := lapNs(start)
	t.noteQuery(rep, ns)
	t.noteScans(sp, parts, rep, ns)
	releaseScanScratches(parts)
	return out, rep
}

func (t *Table) zonesOverlap(pid core.PartitionID, preds []Pred) bool {
	t.zmu.Lock()
	defer t.zmu.Unlock()
	zm := t.zones[pid]
	if zm == nil {
		// Absent zone info must be conservative: a concurrently dropped
		// partition loses its zone map before the post-drop snapshot is
		// published, and a pre-mutation cut may still carry its records.
		// Treating nil as overlapping keeps the snapshot path correct
		// even without the zoneGen retry; partitions with no records
		// were already pruned by the synopsis check.
		return true
	}
	for _, p := range preds {
		if !p.overlapZone(zm[p.Attr]) {
			return false
		}
	}
	return true
}

func entityMatches(e *entity.Entity, preds []Pred) bool {
	for _, p := range preds {
		v, ok := e.Get(p.Attr)
		if !ok || !p.evalValue(v) {
			return false
		}
	}
	return true
}

func (t *Table) sortedPIDs() []core.PartitionID {
	pids := make([]core.PartitionID, 0, len(t.segs)+len(t.cold))
	for pid := range t.segs {
		pids = append(pids, pid)
	}
	for pid := range t.cold {
		pids = append(pids, pid)
	}
	sortPIDs(pids)
	return pids
}

func sortPIDs(pids []core.PartitionID) {
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
}
