package table

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"cinderella/internal/core"
	"cinderella/internal/entity"
)

func predI(attr int, op CmpOp, v int64) Pred {
	return Pred{Attr: attr, Op: op, Value: entity.Int(v)}
}

func predS(attr int, op CmpOp, s string) Pred {
	return Pred{Attr: attr, Op: op, Value: entity.Str(s)}
}

func TestSelectWhereBasic(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	for i := 0; i < 10; i++ {
		e := &entity.Entity{}
		e.Set(1, entity.Int(int64(i)))
		e.Set(2, entity.Str("x"))
		tbl.Insert(e)
	}
	res, _ := tbl.SelectWhere([]Pred{predI(1, Lt, 3)})
	if len(res) != 3 {
		t.Fatalf("Lt 3 = %d rows", len(res))
	}
	res, _ = tbl.SelectWhere([]Pred{predI(1, Eq, 7)})
	if len(res) != 1 {
		t.Fatalf("Eq 7 = %d rows", len(res))
	}
	res, _ = tbl.SelectWhere([]Pred{predI(1, Ge, 8), predS(2, Eq, "x")})
	if len(res) != 2 {
		t.Fatalf("conjunction = %d rows", len(res))
	}
	res, _ = tbl.SelectWhere([]Pred{predI(1, Gt, 100)})
	if len(res) != 0 {
		t.Fatalf("Gt 100 = %d rows", len(res))
	}
}

func TestSelectWhereMissingAttributeIsFalse(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	e := &entity.Entity{}
	e.Set(1, entity.Int(5))
	tbl.Insert(e)
	// Predicate on attribute 9, which the entity lacks.
	res, _ := tbl.SelectWhere([]Pred{predI(9, Eq, 0)})
	if len(res) != 0 {
		t.Fatalf("missing-attr predicate matched %d rows", len(res))
	}
}

func TestSelectWhereKindMismatchFalse(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	e := &entity.Entity{}
	e.Set(1, entity.Str("five"))
	tbl.Insert(e)
	res, _ := tbl.SelectWhere([]Pred{predI(1, Eq, 5)})
	if len(res) != 0 {
		t.Fatalf("numeric pred on string matched %d", len(res))
	}
	res, _ = tbl.SelectWhere([]Pred{predS(1, Eq, "five")})
	if len(res) != 1 {
		t.Fatalf("string pred = %d", len(res))
	}
}

func TestSelectWhereSynopsisPruning(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	for i := 0; i < 5; i++ {
		a := &entity.Entity{}
		a.Set(1, entity.Int(int64(i)))
		tbl.Insert(a)
		b := &entity.Entity{}
		b.Set(50, entity.Int(int64(i)))
		tbl.Insert(b)
	}
	if tbl.NumPartitions() != 2 {
		t.Fatalf("setup partitions = %d", tbl.NumPartitions())
	}
	_, rep := tbl.SelectWhere([]Pred{predI(1, Ge, 0)})
	if rep.PartitionsTouched != 1 || rep.PartitionsPruned != 1 {
		t.Fatalf("synopsis pruning: %+v", rep)
	}
}

func TestSelectWhereZonePruning(t *testing.T) {
	// Two partitions with the SAME attribute but disjoint value ranges
	// (schemas differ in a secondary attribute so Cinderella separates
	// them): zone maps must prune by value.
	tbl := newTestTable(0.5, 100)
	for i := 0; i < 10; i++ {
		lo := &entity.Entity{}
		lo.Set(1, entity.Int(int64(i))) // values 0..9
		lo.Set(2, entity.Int(1))
		tbl.Insert(lo)
		hi := &entity.Entity{}
		hi.Set(1, entity.Int(int64(1000+i))) // values 1000..1009
		hi.Set(60, entity.Int(1))
		tbl.Insert(hi)
	}
	if tbl.NumPartitions() != 2 {
		t.Skipf("setup produced %d partitions", tbl.NumPartitions())
	}
	res, rep := tbl.SelectWhere([]Pred{predI(1, Lt, 100)})
	if len(res) != 10 {
		t.Fatalf("rows = %d", len(res))
	}
	if rep.PartitionsPruned != 1 {
		t.Fatalf("zone pruning failed: %+v", rep)
	}
	// Equality probe into the gap prunes everything.
	_, rep = tbl.SelectWhere([]Pred{predI(1, Eq, 500)})
	if rep.PartitionsTouched != 0 {
		t.Fatalf("gap probe touched %d partitions", rep.PartitionsTouched)
	}
}

func TestSelectWhereStringZones(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	for _, s := range []string{"apple", "banana", "cherry"} {
		e := &entity.Entity{}
		e.Set(1, entity.Str(s))
		tbl.Insert(e)
	}
	res, _ := tbl.SelectWhere([]Pred{predS(1, Ge, "b")})
	if len(res) != 2 {
		t.Fatalf("Ge b = %d", len(res))
	}
	_, rep := tbl.SelectWhere([]Pred{predS(1, Gt, "zzz")})
	if rep.PartitionsTouched != 0 {
		t.Fatalf("out-of-range string probe touched %d", rep.PartitionsTouched)
	}
}

func TestSelectWhereEmptyPredsPanics(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("empty predicate list accepted")
		}
	}()
	tbl.SelectWhere(nil)
}

func TestRebuildZoneMapsTightensAfterChurn(t *testing.T) {
	tbl := newTestTable(0.5, 1000)
	var wide core.EntityID
	for i := 0; i < 20; i++ {
		e := &entity.Entity{}
		e.Set(1, entity.Int(int64(i)))
		id := tbl.Insert(e)
		if i == 19 {
			wide = id
		}
	}
	// Insert an outlier, then delete it; the additive zone still covers
	// the outlier until rebuild.
	out := &entity.Entity{}
	out.Set(1, entity.Int(1_000_000))
	oid := tbl.Insert(out)
	tbl.Delete(oid)
	_ = wide

	_, rep := tbl.SelectWhere([]Pred{predI(1, Gt, 500_000)})
	if rep.PartitionsTouched == 0 {
		t.Fatal("additive zone should still include the deleted outlier")
	}
	tbl.RebuildZoneMaps()
	_, rep = tbl.SelectWhere([]Pred{predI(1, Gt, 500_000)})
	if rep.PartitionsTouched != 0 {
		t.Fatalf("rebuild did not tighten zones: %+v", rep)
	}
	// Rebuild must not lose live data.
	res, _ := tbl.SelectWhere([]Pred{predI(1, Ge, 0)})
	if len(res) != 20 {
		t.Fatalf("rows after rebuild = %d", len(res))
	}
}

func TestSelectWhereAgreesWithBruteForce(t *testing.T) {
	tbl := newTestTable(0.3, 50)
	rng := rand.New(rand.NewSource(8))
	type rec struct {
		id   core.EntityID
		vals map[int]int64
	}
	var recs []rec
	for i := 0; i < 800; i++ {
		e := &entity.Entity{}
		vals := map[int]int64{}
		for _, a := range []int{1, 2, 3} {
			if rng.Float64() < 0.7 {
				v := int64(rng.Intn(1000))
				e.Set(a, entity.Int(v))
				vals[a] = v
			}
		}
		if e.NumAttrs() == 0 {
			e.Set(1, entity.Int(0))
			vals[1] = 0
		}
		id := tbl.Insert(e)
		recs = append(recs, rec{id, vals})
	}
	for trial := 0; trial < 50; trial++ {
		attr := 1 + rng.Intn(3)
		op := CmpOp(rng.Intn(5))
		val := int64(rng.Intn(1000))
		res, _ := tbl.SelectWhere([]Pred{predI(attr, op, val)})
		got := map[core.EntityID]bool{}
		for _, r := range res {
			got[r.ID] = true
		}
		for _, r := range recs {
			v, has := r.vals[attr]
			want := has && cmpMatch(op, compareFloat(float64(v), float64(val)))
			if got[r.id] != want {
				t.Fatalf("trial %d: attr=%d op=%v val=%d entity=%d: got %v want %v",
					trial, attr, op, val, r.id, got[r.id], want)
			}
		}
	}
}

func TestZonesOverlapMissingZoneMapIsConservative(t *testing.T) {
	tbl := newTestTable(0.5, 100)
	// A pid with no zone map (never seen, or concurrently dropped) must
	// read as overlapping: a snapshot cut captured before a drop can
	// still carry the dropped partition's records, and pruning it there
	// would lose them.
	if !tbl.zonesOverlap(core.PartitionID(9999), []Pred{predI(1, Eq, 0)}) {
		t.Fatal("missing zone map pruned; absence of zone info must be non-prunable")
	}
}

func TestPartitionDropBumpsZoneGen(t *testing.T) {
	tbl := newTestTable(0.35, 40)
	rng := rand.New(rand.NewSource(3))
	var ids []core.EntityID
	for i := 0; i < 400; i++ {
		ids = append(ids, tbl.Insert(randomTestEntity(rng)))
	}
	// Delete enough to leave partitions underfilled so Compact merges —
	// and therefore drops — at least one partition.
	for i, id := range ids {
		if i%4 != 0 {
			tbl.Delete(id)
		}
	}
	gen := tbl.zoneGen.Load()
	if n := tbl.Compact(0.9); n == 0 {
		t.Fatal("setup: compaction merged nothing, no drop exercised")
	}
	if tbl.zoneGen.Load() == gen {
		t.Fatal("partition drop did not bump the zone generation; a snapshot SelectWhere that captured its cut before the drop could prune the dropped partition and lose its rows")
	}
}

// TestSelectWhereSurvivesConcurrentCompaction races snapshot SelectWhere
// readers against a writer that repeatedly creates, hollows out, and
// compacts partitions — every round drops a partition whose surviving
// rows move to a peer. Rows confirmed inserted (and never deleted) before
// a query starts must always be in its result: the regression here was
// pruning a concurrently dropped partition out of a pre-drop snapshot
// cut via its deleted zone map.
func TestSelectWhereSurvivesConcurrentCompaction(t *testing.T) {
	tbl := newTestTable(0.35, 60)
	preds := []Pred{predI(3, Ge, 0)}

	var mu sync.Mutex
	confirmed := make(map[core.EntityID]bool)

	stop := make(chan struct{})
	var wwg, rwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		defer close(stop)
		rng := rand.New(rand.NewSource(77))
		for round := 0; round < 150; round++ {
			var churn []core.EntityID
			for i := 0; i < 30; i++ {
				e := &entity.Entity{}
				e.Set(3, entity.Int(int64(rng.Intn(100))))
				e.Set(4+round%3, entity.Int(1))
				id := tbl.Insert(e)
				if i%10 == 0 {
					mu.Lock()
					confirmed[id] = true
					mu.Unlock()
				} else {
					churn = append(churn, id)
				}
			}
			for _, id := range churn {
				tbl.Delete(id)
			}
			tbl.Compact(0.95)
		}
	}()

	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				want := make([]core.EntityID, 0, len(confirmed))
				for id := range confirmed {
					want = append(want, id)
				}
				mu.Unlock()
				res, _ := tbl.SelectWhere(preds)
				got := make(map[core.EntityID]bool, len(res))
				for _, h := range res {
					got[h.ID] = true
				}
				for _, id := range want {
					if !got[id] {
						errs <- fmt.Errorf("SelectWhere lost entity %d during concurrent compaction", id)
						return
					}
				}
			}
		}()
	}

	wwg.Wait()
	rwg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{Eq: "=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v", op)
		}
	}
	if CmpOp(99).String() != "?" {
		t.Error("unknown op")
	}
}
