// Package tier drives heat-driven storage tiering in the background:
// partitions the workload has gone quiet on are frozen into compressed,
// read-only cold segments (internal/storage), and frozen partitions the
// workload comes back to are thawed ("reheated") into the hot tier.
//
// The manager is deliberately shaped like internal/recluster.Manager —
// a periodic Tick against the partition heat map, a Pause/Resume drain
// hook, and a live status surface at /debug/tier — because the two
// background services share a control plane: the daemon runs both, and
// the reclusterer consults IsFrozen so it never re-rates a partition
// the tierer just compressed (re-rating members would thaw it, and the
// two services would fight).
//
// Tier policy, per tick:
//
//   - Demote (freeze): a hot partition whose heat-map query count has
//     not moved for MinIdleTicks consecutive ticks is idle. Idle
//     partitions are frozen coldest-first — never-queried before
//     longest-idle, larger resident footprint first — until the
//     resident-byte budget (TargetResidentBytes) is met, capped at
//     MaxFreezesPerTick per tick so freeze CPU (vacuum + deflate) is
//     paced. With no byte budget every sufficiently idle partition is
//     eligible.
//
//   - Promote (thaw): a frozen partition that absorbed ReheatColdReads
//     or more block decompressions since the previous tick is being
//     scanned again — reheat it. Mutations bypass the manager entirely:
//     any write reaching a frozen partition thaws it inside the table
//     layer, and the manager just observes the changed tier state on
//     its next tick.
package tier

import (
	"context"
	"sort"
	"sync"
	"time"

	"cinderella/internal/obs"
	"cinderella/internal/table"
)

// State is one partition's tier row qualified by its owning shard (-1
// for an unsharded table), the Store wire type and the /debug/tier
// per-partition listing.
type State struct {
	Shard int `json:"shard"`
	table.TierState
}

// Store is the tiering manager's view of the data plane.
// shard.Sharded implements it directly; Single adapts an unsharded
// *cinderella.DurableTable.
type Store interface {
	TierStates() []State
	FreezePartition(shard int, pid uint64) (bool, error)
	ThawPartition(shard int, pid uint64) (bool, error)
}

// SingleTable is the unsharded durable table's tier surface
// (*cinderella.DurableTable satisfies it structurally).
type SingleTable interface {
	TierStates() []table.TierState
	FreezePartition(pid uint64) (bool, error)
	ThawPartition(pid uint64) (bool, error)
}

// Single adapts an unsharded durable table to Store; its partitions
// report shard -1, matching the heat map's unsharded convention.
func Single(t SingleTable) Store { return single{t} }

type single struct{ t SingleTable }

func (s single) TierStates() []State {
	states := s.t.TierStates()
	out := make([]State, len(states))
	for i, ts := range states {
		out[i] = State{Shard: -1, TierState: ts}
	}
	return out
}

func (s single) FreezePartition(_ int, pid uint64) (bool, error) { return s.t.FreezePartition(pid) }
func (s single) ThawPartition(_ int, pid uint64) (bool, error)   { return s.t.ThawPartition(pid) }

// Config tunes the manager. Zero values take the documented defaults.
type Config struct {
	// Interval between background ticks (Run). Default 10s.
	Interval time.Duration
	// TargetResidentBytes is the hot-tier budget: while the hot
	// partitions' resident bytes exceed it, idle partitions are frozen.
	// 0 means no byte budget — every partition idle for MinIdleTicks is
	// frozen regardless of memory pressure.
	TargetResidentBytes int64
	// MaxFreezesPerTick paces freeze CPU (vacuum + deflate per victim).
	// Default 4.
	MaxFreezesPerTick int
	// MinIdleTicks is how many consecutive query-idle ticks make a hot
	// partition a freeze candidate. Default 2.
	MinIdleTicks int
	// ReheatColdReads is the promotion trigger: a frozen partition
	// absorbing this many block decompressions within one tick interval
	// is thawed. Default 4.
	ReheatColdReads int64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second
	}
	if c.MaxFreezesPerTick <= 0 {
		c.MaxFreezesPerTick = 4
	}
	if c.MinIdleTicks <= 0 {
		c.MinIdleTicks = 2
	}
	if c.ReheatColdReads <= 0 {
		c.ReheatColdReads = 4
	}
	return c
}

// Transition is one freeze or thaw in the round/status reports.
type Transition struct {
	Shard     int    `json:"shard"`
	Partition uint64 `json:"partition"`
	Froze     bool   `json:"froze"` // false = thawed (reheat)
	Bytes     int64  `json:"bytes"` // resident bytes before the transition
}

// Round summarizes one Tick.
type Round struct {
	Frozen   []Transition `json:"frozen,omitempty"`
	Thawed   []Transition `json:"thawed,omitempty"`
	Paused   bool         `json:"paused"`
	Resident int64        `json:"resident_bytes"` // hot raw + cold compressed, after the round
	Err      string       `json:"err,omitempty"`
}

// Status is the /debug/tier snapshot.
type Status struct {
	Paused              bool          `json:"paused"`
	Interval            string        `json:"interval"`
	TargetResidentBytes int64         `json:"target_resident_bytes"`
	MaxFreezesPerTick   int           `json:"max_freezes_per_tick"`
	MinIdleTicks        int           `json:"min_idle_ticks"`
	ReheatColdReads     int64         `json:"reheat_cold_reads"`
	Ticks               int64         `json:"ticks"`
	Freezes             int64         `json:"freezes"`
	Thaws               int64         `json:"thaws"`
	HotPartitions       int           `json:"hot_partitions"`
	FrozenPartitions    int           `json:"frozen_partitions"`
	HotResidentBytes    int64         `json:"hot_resident_bytes"`
	ColdResidentBytes   int64         `json:"cold_resident_bytes"`
	ColdRawBytes        int64         `json:"cold_raw_bytes"`
	LastRound           Round         `json:"last_round"`
	Partitions          []State       `json:"partitions"`
	LastTick            time.Duration `json:"-"`
}

// tierKey addresses one partition across shards.
type tierKey struct {
	shard int
	pid   uint64
}

// Manager drives tiering. Ticks are serialized (Run calls Tick; tests
// and benches may call Tick directly when Run is not active).
type Manager struct {
	cfg Config
	st  Store
	reg *obs.Registry

	mu        sync.Mutex
	paused    bool
	ticks     int64
	freezes   int64
	thaws     int64
	lastRound Round
	// queries/idle track per-partition workload quiescence: queries is
	// the heat-map query count at the last tick, idle the consecutive
	// ticks it has not moved.
	queries map[tierKey]int64
	idle    map[tierKey]int
	// coldReads is each frozen partition's decompression count at the
	// last tick; the per-tick delta is the reheat signal.
	coldReads map[tierKey]int64
	// frozen caches the frozen set for IsFrozen (the reclusterer's
	// victim filter) between ticks.
	frozen map[tierKey]bool
}

// New returns a manager and installs its status provider on reg (so
// /debug/tier answers). Call Run to tier in the background, or Tick
// for synchronous rounds.
func New(st Store, reg *obs.Registry, cfg Config) *Manager {
	m := &Manager{
		cfg:       cfg.withDefaults(),
		st:        st,
		reg:       reg,
		queries:   make(map[tierKey]int64),
		idle:      make(map[tierKey]int),
		coldReads: make(map[tierKey]int64),
		frozen:    make(map[tierKey]bool),
	}
	reg.SetTierStatus(func() any { return m.Status() })
	return m
}

// Close detaches the manager from the registry's status surface.
func (m *Manager) Close() { m.reg.SetTierStatus(nil) }

// Pause suspends tiering: Ticks become no-ops until Resume. The daemon
// pauses the manager when drain begins so shutdown never races a
// freeze against the final checkpoint.
func (m *Manager) Pause() {
	m.mu.Lock()
	m.paused = true
	m.mu.Unlock()
}

// Resume lifts Pause.
func (m *Manager) Resume() {
	m.mu.Lock()
	m.paused = false
	m.mu.Unlock()
}

// Run ticks every cfg.Interval until ctx is canceled.
func (m *Manager) Run(ctx context.Context) {
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.Tick()
		}
	}
}

// IsFrozen reports whether (shard, pid) was frozen as of the last tick
// — the reclusterer's victim filter. Deliberately a cached answer: a
// stale true only skips one recluster batch, a stale false re-rates a
// partition whose mutation path would thaw it anyway.
func (m *Manager) IsFrozen(shard int, pid uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frozen[tierKey{shard, pid}]
}

// Status snapshots the manager for /debug/tier.
func (m *Manager) Status() Status {
	states := m.st.TierStates()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Status{
		Paused:              m.paused,
		Interval:            m.cfg.Interval.String(),
		TargetResidentBytes: m.cfg.TargetResidentBytes,
		MaxFreezesPerTick:   m.cfg.MaxFreezesPerTick,
		MinIdleTicks:        m.cfg.MinIdleTicks,
		ReheatColdReads:     m.cfg.ReheatColdReads,
		Ticks:               m.ticks,
		Freezes:             m.freezes,
		Thaws:               m.thaws,
		LastRound:           m.lastRound,
		Partitions:          states,
	}
	for _, ts := range states {
		if ts.Frozen {
			s.FrozenPartitions++
			s.ColdResidentBytes += ts.ResidentBytes
			s.ColdRawBytes += ts.RawBytes
		} else {
			s.HotPartitions++
			s.HotResidentBytes += ts.ResidentBytes
		}
	}
	return s
}

// Tick runs one round: update idle bookkeeping from the heat map, thaw
// reheated frozen partitions, freeze idle hot partitions down to the
// resident budget. It is the synchronous entry tests and benches
// drive; Run calls it on a timer.
func (m *Manager) Tick() Round {
	m.mu.Lock()
	if m.paused {
		m.mu.Unlock()
		return Round{Paused: true}
	}
	m.ticks++
	cfg := m.cfg
	m.mu.Unlock()

	states := m.st.TierStates()
	heat := make(map[tierKey]int64)
	for _, row := range m.reg.HeatSnapshot() {
		heat[tierKey{int(row.Shard), row.Partition}] = row.Queries
	}

	var round Round
	seen := make(map[tierKey]bool, len(states))
	frozenNow := make(map[tierKey]bool)

	m.mu.Lock()
	// Pass 1: bookkeeping. Idle counts advance when the partition's
	// query count did not move this interval; reheat deltas come from
	// the frozen partitions' decompression counters.
	type candidate struct {
		key   tierKey
		idle  int
		never bool // never queried at all — coldest possible
		bytes int64
	}
	var freezable []candidate
	var reheat []tierKey
	var resident int64
	for _, ts := range states {
		k := tierKey{ts.Shard, uint64(ts.Partition)}
		seen[k] = true
		resident += ts.ResidentBytes
		q, everQueried := heat[k]
		if moved := q != m.queries[k]; moved {
			m.idle[k] = 0
		} else {
			m.idle[k]++
		}
		m.queries[k] = q
		if ts.Frozen {
			frozenNow[k] = true
			delta := ts.ColdReads - m.coldReads[k]
			m.coldReads[k] = ts.ColdReads
			if delta >= cfg.ReheatColdReads {
				reheat = append(reheat, k)
			}
			continue
		}
		delete(m.coldReads, k)
		if ts.Entities == 0 || m.idle[k] < cfg.MinIdleTicks {
			continue
		}
		freezable = append(freezable, candidate{
			key:   k,
			idle:  m.idle[k],
			never: !everQueried,
			bytes: ts.ResidentBytes,
		})
	}
	// Drop bookkeeping for partitions that no longer exist.
	for k := range m.queries {
		if !seen[k] {
			delete(m.queries, k)
			delete(m.idle, k)
			delete(m.coldReads, k)
		}
	}
	m.mu.Unlock()

	// Pass 2: promote. Reheats are unconditional — the workload is
	// paying decompression for these partitions right now.
	for _, k := range reheat {
		ok, err := m.st.ThawPartition(k.shard, k.pid)
		if err != nil {
			round.Err = err.Error()
			continue
		}
		if ok {
			delete(frozenNow, k)
			round.Thawed = append(round.Thawed, Transition{Shard: k.shard, Partition: k.pid})
			m.mu.Lock()
			m.thaws++
			delete(m.coldReads, k)
			m.mu.Unlock()
		}
	}

	// Pass 3: demote, coldest first. With a byte budget, stop as soon
	// as the resident footprint fits; without one, freeze every idle
	// candidate up to the per-tick cap.
	sort.SliceStable(freezable, func(i, j int) bool {
		if freezable[i].never != freezable[j].never {
			return freezable[i].never
		}
		if freezable[i].idle != freezable[j].idle {
			return freezable[i].idle > freezable[j].idle
		}
		return freezable[i].bytes > freezable[j].bytes
	})
	for _, c := range freezable {
		if len(round.Frozen) >= cfg.MaxFreezesPerTick {
			break
		}
		if cfg.TargetResidentBytes > 0 && resident <= cfg.TargetResidentBytes {
			break
		}
		ok, err := m.st.FreezePartition(c.key.shard, c.key.pid)
		if err != nil {
			round.Err = err.Error()
			break
		}
		if !ok {
			continue
		}
		frozenNow[c.key] = true
		round.Frozen = append(round.Frozen, Transition{
			Shard: c.key.shard, Partition: c.key.pid, Froze: true, Bytes: c.bytes,
		})
		// The freeze replaced raw pages with compressed blocks; estimate
		// the budget progress from the deflate ratio without re-listing
		// (the next tick refreshes exact numbers).
		resident -= c.bytes / 2
		m.mu.Lock()
		m.freezes++
		m.mu.Unlock()
	}

	round.Resident = resident
	m.mu.Lock()
	m.frozen = frozenNow
	m.lastRound = round
	m.mu.Unlock()
	return round
}
