package tier

import (
	"sync"
	"testing"

	"cinderella/internal/core"
	"cinderella/internal/obs"
	"cinderella/internal/table"
)

// fakeStore is an in-memory tier surface: freeze halves the resident
// footprint (the deflate stand-in), thaw restores it.
type fakeStore struct {
	mu     sync.Mutex
	states map[uint64]*State
}

func newFakeStore(pids ...uint64) *fakeStore {
	fs := &fakeStore{states: make(map[uint64]*State)}
	for _, pid := range pids {
		fs.states[pid] = &State{Shard: -1, TierState: table.TierState{
			Partition:     core.PartitionID(pid),
			Entities:      10,
			ResidentBytes: 1000,
			RawBytes:      1000,
		}}
	}
	return fs
}

func (fs *fakeStore) TierStates() []State {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]State, 0, len(fs.states))
	for _, st := range fs.states {
		out = append(out, *st)
	}
	return out
}

func (fs *fakeStore) FreezePartition(_ int, pid uint64) (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st, ok := fs.states[pid]
	if !ok || st.Frozen {
		return false, nil
	}
	st.Frozen = true
	st.ResidentBytes = st.RawBytes / 2
	return true, nil
}

func (fs *fakeStore) ThawPartition(_ int, pid uint64) (bool, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st, ok := fs.states[pid]
	if !ok || !st.Frozen {
		return false, nil
	}
	st.Frozen = false
	st.ResidentBytes = st.RawBytes
	st.ColdReads = 0
	return true, nil
}

func (fs *fakeStore) setColdReads(pid uint64, n int64) {
	fs.mu.Lock()
	fs.states[pid].ColdReads = n
	fs.mu.Unlock()
}

func (fs *fakeStore) frozenSet(t *testing.T) map[uint64]bool {
	t.Helper()
	out := make(map[uint64]bool)
	for _, st := range fs.TierStates() {
		if st.Frozen {
			out[uint64(st.Partition)] = true
		}
	}
	return out
}

// touch feeds one query's worth of heat for pid into reg.
func touch(reg *obs.Registry, pid uint64) {
	reg.FinishQuery(nil, 0, obs.QueryAgg{}, []obs.PartSpan{{
		Partition: pid, Scanned: 10, Returned: 10, BytesRead: 100, BytesRelevant: 100,
	}})
}

func TestIdlePartitionsFreezeQueriedOnesStayHot(t *testing.T) {
	fs := newFakeStore(1, 2, 3)
	reg := obs.New(obs.Options{})
	m := New(fs, reg, Config{MinIdleTicks: 2, MaxFreezesPerTick: 8})
	defer m.Close()

	// Partition 1 is queried every interval; 2 and 3 go quiet.
	touch(reg, 1)
	m.Tick()
	touch(reg, 1)
	m.Tick()
	touch(reg, 1)
	round := m.Tick()

	frozen := fs.frozenSet(t)
	if frozen[1] {
		t.Fatal("actively queried partition frozen")
	}
	if !frozen[2] || !frozen[3] {
		t.Fatalf("idle partitions not frozen: %v (round %+v)", frozen, round)
	}
	if !m.IsFrozen(-1, 2) || m.IsFrozen(-1, 1) {
		t.Fatal("IsFrozen disagrees with the store")
	}
}

func TestResidentBudgetStopsFreezing(t *testing.T) {
	fs := newFakeStore(1, 2, 3, 4)
	reg := obs.New(obs.Options{})
	// All four idle; budget 3500 needs only one 1000→500 freeze
	// (4000 → est. 3500).
	m := New(fs, reg, Config{MinIdleTicks: 1, MaxFreezesPerTick: 8, TargetResidentBytes: 3500})
	defer m.Close()
	if round := m.Tick(); len(round.Frozen) != 1 {
		t.Fatalf("%d freezes under a nearly-met budget, want 1", len(round.Frozen))
	}
	if round := m.Tick(); len(round.Frozen) != 0 {
		t.Fatalf("froze %v with the budget already met", round.Frozen)
	}

	// A generous budget freezes nothing no matter how idle.
	fs2 := newFakeStore(1, 2)
	m2 := New(fs2, obs.New(obs.Options{}), Config{MinIdleTicks: 1, TargetResidentBytes: 1 << 40})
	defer m2.Close()
	m2.Tick()
	if round := m2.Tick(); len(round.Frozen) != 0 {
		t.Fatalf("froze %v with resident far under budget", round.Frozen)
	}
}

func TestColdReadsReheatFrozenPartition(t *testing.T) {
	fs := newFakeStore(1, 2)
	reg := obs.New(obs.Options{})
	m := New(fs, reg, Config{MinIdleTicks: 1, MaxFreezesPerTick: 8, ReheatColdReads: 4})
	defer m.Close()
	m.Tick()
	m.Tick() // both idle for one interval -> frozen
	if frozen := fs.frozenSet(t); !frozen[1] || !frozen[2] {
		t.Fatalf("setup: frozen = %v", frozen)
	}

	// Partition 1 absorbs a burst of decompressions; 2 stays quiet.
	fs.setColdReads(1, 10)
	round := m.Tick()
	if len(round.Thawed) != 1 || round.Thawed[0].Partition != 1 {
		t.Fatalf("thawed %v, want partition 1", round.Thawed)
	}
	frozen := fs.frozenSet(t)
	if frozen[1] || !frozen[2] {
		t.Fatalf("after reheat: frozen = %v", frozen)
	}
	// The delta resets: no further cold reads, no further thaws — but
	// partition 1 refreezes once it goes idle again (its counters were
	// reset by the thaw).
	if round := m.Tick(); len(round.Thawed) != 0 {
		t.Fatalf("spurious thaw %v", round.Thawed)
	}
}

func TestMaxFreezesPerTickPaces(t *testing.T) {
	fs := newFakeStore(1, 2, 3, 4, 5, 6)
	reg := obs.New(obs.Options{})
	m := New(fs, reg, Config{MinIdleTicks: 1, MaxFreezesPerTick: 2})
	defer m.Close()
	m.Tick()
	if round := m.Tick(); len(round.Frozen) != 2 {
		t.Fatalf("%d freezes, want 2 (paced)", len(round.Frozen))
	}
	if round := m.Tick(); len(round.Frozen) != 2 {
		t.Fatalf("%d freezes on the next tick, want 2", len(round.Frozen))
	}
}

func TestPauseStopsTicks(t *testing.T) {
	fs := newFakeStore(1)
	reg := obs.New(obs.Options{})
	m := New(fs, reg, Config{MinIdleTicks: 1})
	defer m.Close()
	m.Pause()
	m.Tick()
	if round := m.Tick(); !round.Paused {
		t.Fatal("tick ran while paused")
	}
	if frozen := fs.frozenSet(t); len(frozen) != 0 {
		t.Fatalf("froze %v while paused", frozen)
	}
	m.Resume()
	m.Tick()
	m.Tick()
	if frozen := fs.frozenSet(t); !frozen[1] {
		t.Fatal("no freeze after resume")
	}
}

func TestStatusAggregates(t *testing.T) {
	fs := newFakeStore(1, 2, 3)
	reg := obs.New(obs.Options{})
	m := New(fs, reg, Config{MinIdleTicks: 1, MaxFreezesPerTick: 1})
	defer m.Close()
	m.Tick()
	s := m.Status()
	if s.FrozenPartitions != 1 || s.HotPartitions != 2 {
		t.Fatalf("status tiers hot=%d cold=%d, want 2/1", s.HotPartitions, s.FrozenPartitions)
	}
	if s.ColdResidentBytes != 500 || s.ColdRawBytes != 1000 {
		t.Fatalf("status cold bytes %d/%d, want 500/1000", s.ColdResidentBytes, s.ColdRawBytes)
	}
	if s.HotResidentBytes != 2000 {
		t.Fatalf("status hot bytes %d, want 2000", s.HotResidentBytes)
	}
	if s.Freezes != 1 || s.Ticks != 1 {
		t.Fatalf("status freezes=%d ticks=%d, want 1/1", s.Freezes, s.Ticks)
	}
}

// TestSingleAdapter exercises the unsharded adapter against a minimal
// SingleTable fake: shard qualifiers are -1 and calls pass through.
type fakeSingle struct{ frozen bool }

func (f *fakeSingle) TierStates() []table.TierState {
	return []table.TierState{{Partition: 7, Entities: 3, Frozen: f.frozen}}
}
func (f *fakeSingle) FreezePartition(pid uint64) (bool, error) {
	if pid != 7 || f.frozen {
		return false, nil
	}
	f.frozen = true
	return true, nil
}
func (f *fakeSingle) ThawPartition(pid uint64) (bool, error) {
	if pid != 7 || !f.frozen {
		return false, nil
	}
	f.frozen = false
	return true, nil
}

func TestSingleAdapter(t *testing.T) {
	st := Single(&fakeSingle{})
	states := st.TierStates()
	if len(states) != 1 || states[0].Shard != -1 || states[0].Partition != 7 {
		t.Fatalf("adapter states = %+v", states)
	}
	if ok, err := st.FreezePartition(-1, 7); !ok || err != nil {
		t.Fatalf("freeze through adapter = %v, %v", ok, err)
	}
	if ok, err := st.ThawPartition(-1, 7); !ok || err != nil {
		t.Fatalf("thaw through adapter = %v, %v", ok, err)
	}
}
