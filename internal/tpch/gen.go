package tpch

import (
	"fmt"
	"math/rand"

	"cinderella/internal/engine"
	"cinderella/internal/entity"
)

// Data holds all generated tables as materialized row sources.
type Data struct {
	SF     float64
	Tables map[string]*engine.SliceSource
}

// Source returns the row source for a table name.
func (d *Data) Source(name string) engine.RowSource {
	s, ok := d.Tables[name]
	if !ok {
		panic(fmt.Sprintf("tpch: unknown table %q", name))
	}
	return s
}

// Rows returns the materialized rows of a table.
func (d *Data) Rows(name string) []engine.Row {
	return d.Tables[name].Data
}

func iv(i int64) engine.Value   { return entity.Int(i) }
func fv(f float64) engine.Value { return entity.Float(f) }
func sv(s string) engine.Value  { return entity.Str(s) }

// money rounds to cents to keep arithmetic stable across runs.
func money(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }

// Generate produces a deterministic TPC-H-style data set at scale factor
// sf. Cardinalities follow the spec: supplier 10k·sf, customer 150k·sf,
// part 200k·sf, partsupp 4/part, orders 10/customer, lineitem 1–7/order.
func Generate(sf float64, seed int64) *Data {
	if sf <= 0 {
		panic(fmt.Sprintf("tpch: scale factor %v must be positive", sf))
	}
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))

	nSupp := scaled(10000, sf)
	nCust := scaled(150000, sf)
	nPart := scaled(200000, sf)

	d := &Data{SF: sf, Tables: map[string]*engine.SliceSource{}}
	mk := func(name string) *engine.SliceSource {
		s := &engine.SliceSource{Cols: Schemas[name]}
		d.Tables[name] = s
		return s
	}

	// region
	region := mk(Region)
	for i, name := range regionNames {
		region.Data = append(region.Data, engine.Row{
			iv(int64(i)), sv(name), sv(comment(rng)),
		})
	}

	// nation
	nation := mk(Nation)
	for i, nd := range nationDefs {
		nation.Data = append(nation.Data, engine.Row{
			iv(int64(i)), sv(nd.name), iv(nd.region), sv(comment(rng)),
		})
	}

	// supplier
	supplier := mk(Supplier)
	for i := 1; i <= nSupp; i++ {
		nat := int64(rng.Intn(25))
		supplier.Data = append(supplier.Data, engine.Row{
			iv(int64(i)),
			sv(fmt.Sprintf("Supplier#%09d", i)),
			sv(address(rng)),
			iv(nat),
			sv(phone(rng, nat)),
			fv(money(rng.Float64()*10999.98 - 999.99)),
			sv(supplierComment(rng)),
		})
	}

	// customer
	customer := mk(Customer)
	for i := 1; i <= nCust; i++ {
		nat := int64(rng.Intn(25))
		customer.Data = append(customer.Data, engine.Row{
			iv(int64(i)),
			sv(fmt.Sprintf("Customer#%09d", i)),
			sv(address(rng)),
			iv(nat),
			sv(phone(rng, nat)),
			fv(money(rng.Float64()*10999.98 - 999.99)),
			sv(segments[rng.Intn(len(segments))]),
			sv(comment(rng)),
		})
	}

	// part
	part := mk(Part)
	retail := make([]float64, nPart+1)
	for i := 1; i <= nPart; i++ {
		price := money(90000+float64((i/10)%20001)+100*float64(i%1000)) / 100
		retail[i] = price
		part.Data = append(part.Data, engine.Row{
			iv(int64(i)),
			sv(partName(rng)),
			sv(fmt.Sprintf("Manufacturer#%d", 1+rng.Intn(5))),
			sv(fmt.Sprintf("Brand#%d%d", 1+rng.Intn(5), 1+rng.Intn(5))),
			sv(partType(rng)),
			iv(int64(1 + rng.Intn(50))),
			sv(containers1[rng.Intn(len(containers1))] + " " + containers2[rng.Intn(len(containers2))]),
			fv(price),
			sv(comment(rng)),
		})
	}

	// partsupp: 4 suppliers per part.
	partsupp := mk(PartSupp)
	for p := 1; p <= nPart; p++ {
		for s := 0; s < 4; s++ {
			supp := int64((p+s*(nSupp/4+1))%nSupp) + 1
			partsupp.Data = append(partsupp.Data, engine.Row{
				iv(int64(p)),
				iv(supp),
				iv(int64(1 + rng.Intn(9999))),
				fv(money(1 + rng.Float64()*999)),
				sv(comment(rng)),
			})
		}
	}

	// orders + lineitem
	orders := mk(Orders)
	lineitem := mk(Lineitem)
	startDate := Date(1992, 1, 1)
	endDate := Date(1998, 8, 2)
	cutoff := Date(1995, 6, 17)
	okey := int64(0)
	for c := 1; c <= nCust; c++ {
		// TPC-H places orders for 2/3 of customers, ~15 each on average
		// over the full population; we give each customer up to 15.
		n := rng.Intn(16)
		for o := 0; o < n; o++ {
			okey++
			odate := startDate + int64(rng.Intn(int(endDate-startDate)+1))
			nl := 1 + rng.Intn(7)
			var total float64
			allF, allO := true, true
			for l := 1; l <= nl; l++ {
				pkey := int64(1 + rng.Intn(nPart))
				skey := int64((int(pkey)+(l-1)*(nSupp/4+1))%nSupp) + 1
				qty := float64(1 + rng.Intn(50))
				ext := money(qty * retail[pkey])
				disc := float64(rng.Intn(11)) / 100
				tax := float64(rng.Intn(9)) / 100
				ship := odate + int64(1+rng.Intn(121))
				commit := odate + int64(30+rng.Intn(61))
				receipt := ship + int64(1+rng.Intn(30))
				var rf, ls string
				if receipt <= cutoff {
					if rng.Intn(2) == 0 {
						rf = "R"
					} else {
						rf = "A"
					}
				} else {
					rf = "N"
				}
				if ship > cutoff {
					ls = "O"
					allF = false
				} else {
					ls = "F"
					allO = false
				}
				total += ext * (1 + tax) * (1 - disc)
				lineitem.Data = append(lineitem.Data, engine.Row{
					iv(okey), iv(pkey), iv(skey), iv(int64(l)),
					fv(qty), fv(ext), fv(disc), fv(tax),
					sv(rf), sv(ls),
					iv(ship), iv(commit), iv(receipt),
					sv(shipInstructs[rng.Intn(len(shipInstructs))]),
					sv(shipModes[rng.Intn(len(shipModes))]),
					sv(comment(rng)),
				})
			}
			status := "P"
			if allF {
				status = "F"
			} else if allO {
				status = "O"
			}
			orders.Data = append(orders.Data, engine.Row{
				iv(okey), iv(int64(c)), sv(status), fv(money(total)),
				iv(odate),
				sv(priorities[rng.Intn(len(priorities))]),
				sv(fmt.Sprintf("Clerk#%09d", 1+rng.Intn(1000))),
				iv(0),
				sv(comment(rng)),
			})
		}
	}
	return d
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

func comment(rng *rand.Rand) string {
	words := []string{"carefully", "quickly", "furiously", "slyly", "blithely",
		"packages", "deposits", "requests", "accounts", "ideas", "foxes",
		"pending", "final", "express", "regular", "special"}
	n := 2 + rng.Intn(4)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += words[rng.Intn(len(words))]
	}
	return out
}

// supplierComment occasionally embeds the "Customer…Complaints" marker
// that query Q16 filters on.
func supplierComment(rng *rand.Rand) string {
	c := comment(rng)
	if rng.Intn(200) == 0 {
		return c + " Customer Complaints " + c
	}
	return c
}

func address(rng *rand.Rand) string {
	return fmt.Sprintf("%d %s street", 1+rng.Intn(9999), partNouns[rng.Intn(len(partNouns))])
}

func phone(rng *rand.Rand, nation int64) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", 10+nation, 100+rng.Intn(900),
		100+rng.Intn(900), 1000+rng.Intn(9000))
}

func partName(rng *rand.Rand) string {
	a := partNouns[rng.Intn(len(partNouns))]
	b := partNouns[rng.Intn(len(partNouns))]
	return a + " " + b
}

func partType(rng *rand.Rand) string {
	return typeSyl1[rng.Intn(len(typeSyl1))] + " " +
		typeSyl2[rng.Intn(len(typeSyl2))] + " " +
		typeSyl3[rng.Intn(len(typeSyl3))]
}
