// Package tpch is a from-scratch TPC-H-style substrate: the eight-table
// schema, a deterministic data generator at arbitrary scale factor, and a
// universal-table adapter that loads all rows as entities into a
// Cinderella-partitioned table — the setup of the paper's regular-data
// experiment (Table I).
//
// The generator follows the TPC-H 2.16 schema and value domains closely
// enough for the 22 analytical queries to exercise realistic joins,
// predicates, and aggregates, but it is not a certified dbgen clone:
// comments are short synthetic strings and some value correlations are
// simplified. See DESIGN.md for the substitution rationale.
package tpch

import (
	"time"

	"cinderella/internal/engine"
)

// Table names.
const (
	Region   = "region"
	Nation   = "nation"
	Supplier = "supplier"
	Customer = "customer"
	Part     = "part"
	PartSupp = "partsupp"
	Orders   = "orders"
	Lineitem = "lineitem"
)

// TableNames lists all tables in generation order (parents first).
var TableNames = []string{Region, Nation, Supplier, Customer, Part, PartSupp, Orders, Lineitem}

// Schemas maps each table to its column names (TPC-H order).
var Schemas = map[string]engine.Schema{
	Region: {"r_regionkey", "r_name", "r_comment"},
	Nation: {"n_nationkey", "n_name", "n_regionkey", "n_comment"},
	Supplier: {
		"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
		"s_acctbal", "s_comment",
	},
	Customer: {
		"c_custkey", "c_name", "c_address", "c_nationkey", "c_phone",
		"c_acctbal", "c_mktsegment", "c_comment",
	},
	Part: {
		"p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size",
		"p_container", "p_retailprice", "p_comment",
	},
	PartSupp: {
		"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost",
		"ps_comment",
	},
	Orders: {
		"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
		"o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority",
		"o_comment",
	},
	Lineitem: {
		"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber",
		"l_quantity", "l_extendedprice", "l_discount", "l_tax",
		"l_returnflag", "l_linestatus", "l_shipdate", "l_commitdate",
		"l_receiptdate", "l_shipinstruct", "l_shipmode", "l_comment",
	},
}

// Column index constants, used by the hand-built query plans.
const (
	RRegionkey = iota
	RName
	RComment
)

const (
	NNationkey = iota
	NName
	NRegionkey
	NComment
)

const (
	SSuppkey = iota
	SName
	SAddress
	SNationkey
	SPhone
	SAcctbal
	SComment
)

const (
	CCustkey = iota
	CName
	CAddress
	CNationkey
	CPhone
	CAcctbal
	CMktsegment
	CComment
)

const (
	PPartkey = iota
	PName
	PMfgr
	PBrand
	PType
	PSize
	PContainer
	PRetailprice
	PComment
)

const (
	PSPartkey = iota
	PSSuppkey
	PSAvailqty
	PSSupplycost
	PSComment
)

const (
	OOrderkey = iota
	OCustkey
	OOrderstatus
	OTotalprice
	OOrderdate
	OOrderpriority
	OClerk
	OShippriority
	OComment
)

const (
	LOrderkey = iota
	LPartkey
	LSuppkey
	LLinenumber
	LQuantity
	LExtendedprice
	LDiscount
	LTax
	LReturnflag
	LLinestatus
	LShipdate
	LCommitdate
	LReceiptdate
	LShipinstruct
	LShipmode
	LComment
)

// Date returns the number of days since the Unix epoch for a calendar
// date; all TPC-H dates are stored as Int(days) so comparisons are cheap.
func Date(y, m, d int) int64 {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC).Unix() / 86400
}

// regionNames are the five TPC-H regions.
var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nationDefs pairs the 25 TPC-H nations with their region keys.
var nationDefs = []struct {
	name   string
	region int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var shipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

var shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

var typeSyl1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var typeSyl2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var typeSyl3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

var containers1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
var containers2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

var partNouns = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished",
	"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
	"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
	"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
	"green", "grey", "honeydew", "hot", "hotpink", "indian", "ivory",
}
