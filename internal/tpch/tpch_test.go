package tpch

import (
	"testing"

	"cinderella/internal/core"
	"cinderella/internal/engine"
	"cinderella/internal/table"
)

func testData(t *testing.T) *Data {
	t.Helper()
	return Generate(0.002, 1)
}

func TestGenerateCardinalities(t *testing.T) {
	d := testData(t)
	if len(d.Rows(Region)) != 5 {
		t.Fatalf("region = %d", len(d.Rows(Region)))
	}
	if len(d.Rows(Nation)) != 25 {
		t.Fatalf("nation = %d", len(d.Rows(Nation)))
	}
	if got := len(d.Rows(Supplier)); got != 20 {
		t.Fatalf("supplier = %d, want 20", got)
	}
	if got := len(d.Rows(Customer)); got != 300 {
		t.Fatalf("customer = %d, want 300", got)
	}
	if got := len(d.Rows(Part)); got != 400 {
		t.Fatalf("part = %d, want 400", got)
	}
	if got := len(d.Rows(PartSupp)); got != 1600 {
		t.Fatalf("partsupp = %d, want 1600", got)
	}
	nOrders := len(d.Rows(Orders))
	if nOrders < 1500 || nOrders > 3000 {
		t.Fatalf("orders = %d, want ≈ 2250", nOrders)
	}
	nLine := len(d.Rows(Lineitem))
	if nLine < 3*nOrders || nLine > 7*nOrders {
		t.Fatalf("lineitem = %d for %d orders", nLine, nOrders)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.001, 7)
	b := Generate(0.001, 7)
	for _, name := range TableNames {
		ra, rb := a.Rows(name), b.Rows(name)
		if len(ra) != len(rb) {
			t.Fatalf("%s: %d vs %d rows", name, len(ra), len(rb))
		}
		for i := range ra {
			for j := range ra[i] {
				if !ra[i][j].Equal(rb[i][j]) {
					t.Fatalf("%s row %d col %d differs", name, i, j)
				}
			}
		}
	}
}

func TestGenerateBadSFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("sf=0 accepted")
		}
	}()
	Generate(0, 1)
}

func TestSchemasMatchRows(t *testing.T) {
	d := testData(t)
	for _, name := range TableNames {
		w := len(Schemas[name])
		for i, r := range d.Rows(name) {
			if len(r) != w {
				t.Fatalf("%s row %d has %d cols, schema %d", name, i, len(r), w)
			}
		}
	}
}

func TestReferentialIntegrity(t *testing.T) {
	d := testData(t)
	// nation.regionkey ⊆ region.
	regions := map[int64]bool{}
	for _, r := range d.Rows(Region) {
		regions[r[RRegionkey].AsInt()] = true
	}
	for _, n := range d.Rows(Nation) {
		if !regions[n[NRegionkey].AsInt()] {
			t.Fatalf("nation %v has dangling region", n[NName])
		}
	}
	// orders.custkey ⊆ customer.
	custs := map[int64]bool{}
	for _, c := range d.Rows(Customer) {
		custs[c[CCustkey].AsInt()] = true
	}
	for _, o := range d.Rows(Orders) {
		if !custs[o[OCustkey].AsInt()] {
			t.Fatalf("order %v has dangling customer", o[OOrderkey])
		}
	}
	// lineitem.orderkey ⊆ orders; partkey ⊆ part; suppkey ⊆ supplier.
	ords := map[int64]bool{}
	for _, o := range d.Rows(Orders) {
		ords[o[OOrderkey].AsInt()] = true
	}
	parts := map[int64]bool{}
	for _, p := range d.Rows(Part) {
		parts[p[PPartkey].AsInt()] = true
	}
	supps := map[int64]bool{}
	for _, s := range d.Rows(Supplier) {
		supps[s[SSuppkey].AsInt()] = true
	}
	for _, l := range d.Rows(Lineitem) {
		if !ords[l[LOrderkey].AsInt()] || !parts[l[LPartkey].AsInt()] || !supps[l[LSuppkey].AsInt()] {
			t.Fatalf("lineitem %v dangling", l[LOrderkey])
		}
	}
	// partsupp keys valid.
	for _, ps := range d.Rows(PartSupp) {
		if !parts[ps[PSPartkey].AsInt()] || !supps[ps[PSSuppkey].AsInt()] {
			t.Fatal("partsupp dangling")
		}
	}
}

func TestValueDomains(t *testing.T) {
	d := testData(t)
	lo, hi := Date(1992, 1, 1), Date(1998, 12, 31)
	for _, l := range d.Rows(Lineitem) {
		if q := l[LQuantity].AsFloat(); q < 1 || q > 50 {
			t.Fatalf("quantity %v out of range", q)
		}
		if disc := l[LDiscount].AsFloat(); disc < 0 || disc > 0.10 {
			t.Fatalf("discount %v out of range", disc)
		}
		if tax := l[LTax].AsFloat(); tax < 0 || tax > 0.08 {
			t.Fatalf("tax %v out of range", tax)
		}
		ship := l[LShipdate].AsInt()
		if ship < lo || ship > hi+200 {
			t.Fatalf("shipdate %v out of range", ship)
		}
		if l[LReceiptdate].AsInt() <= ship {
			t.Fatal("receiptdate not after shipdate")
		}
		rf := l[LReturnflag].AsString()
		if rf != "R" && rf != "A" && rf != "N" {
			t.Fatalf("returnflag %q", rf)
		}
		ls := l[LLinestatus].AsString()
		if ls != "O" && ls != "F" {
			t.Fatalf("linestatus %q", ls)
		}
	}
	for _, o := range d.Rows(Orders) {
		if o[OTotalprice].AsFloat() <= 0 {
			t.Fatal("non-positive totalprice")
		}
		st := o[OOrderstatus].AsString()
		if st != "F" && st != "O" && st != "P" {
			t.Fatalf("orderstatus %q", st)
		}
	}
}

func TestOrderTotalMatchesLineitems(t *testing.T) {
	d := testData(t)
	sums := map[int64]float64{}
	for _, l := range d.Rows(Lineitem) {
		sums[l[LOrderkey].AsInt()] += l[LExtendedprice].AsFloat() *
			(1 + l[LTax].AsFloat()) * (1 - l[LDiscount].AsFloat())
	}
	for _, o := range d.Rows(Orders) {
		want := sums[o[OOrderkey].AsInt()]
		got := o[OTotalprice].AsFloat()
		if diff := got - want; diff > 0.5 || diff < -0.5 {
			t.Fatalf("order %v total %v, lineitems %v", o[OOrderkey], got, want)
		}
	}
}

func TestDate(t *testing.T) {
	if Date(1970, 1, 1) != 0 {
		t.Fatalf("epoch = %d", Date(1970, 1, 1))
	}
	if Date(1970, 1, 2) != 1 {
		t.Fatal("day arithmetic broken")
	}
	if Date(1998, 9, 2)-Date(1998, 8, 2) != 31 {
		t.Fatal("month arithmetic broken")
	}
}

func newUniversal(b int64) *table.Table {
	return table.New(table.Config{
		Partitioner: core.NewCinderella(core.Config{Weight: 0.5, MaxSize: b}),
	})
}

func TestLoadUniversalAndViews(t *testing.T) {
	d := Generate(0.001, 1)
	tbl := newUniversal(500)
	n := LoadUniversal(d, tbl)
	if n != tbl.Len() {
		t.Fatalf("loaded %d, table holds %d", n, tbl.Len())
	}
	// Every view must reproduce its table exactly (as a multiset; order
	// may differ).
	cat := NewUniversalCatalog(tbl)
	for _, name := range TableNames {
		want := d.Rows(name)
		got := 0
		seen := map[string]int{}
		for _, r := range want {
			seen[rowKey(r)]++
		}
		cat.Source(name).Rows(func(r engine.Row) bool {
			got++
			k := rowKey(r)
			seen[k]--
			if seen[k] < 0 {
				t.Fatalf("%s: unexpected row %v", name, r)
			}
			return true
		})
		if got != len(want) {
			t.Fatalf("%s: view has %d rows, want %d", name, got, len(want))
		}
	}
}

func rowKey(r []engine.Value) string {
	k := ""
	for _, v := range r {
		k += v.String() + "|"
	}
	return k
}

// TestSchemaRecovery reproduces the paper's core Table I observation:
// loading perfectly regular data, Cinderella finds only partitions that
// exactly fit the TPC-H schema.
func TestSchemaRecovery(t *testing.T) {
	d := Generate(0.001, 1)
	for _, b := range []int64{500, 2000} {
		tbl := newUniversal(b)
		LoadUniversal(d, tbl)
		pure, total := SchemaPurity(tbl)
		if pure != total {
			t.Fatalf("B=%d: only %d of %d partitions schema-pure", b, pure, total)
		}
		if total < len(TableNames) {
			t.Fatalf("B=%d: %d partitions for %d tables", b, total, len(TableNames))
		}
	}
}
