package tpch

import (
	"fmt"

	"cinderella/internal/core"
	"cinderella/internal/engine"
	"cinderella/internal/entity"
	"cinderella/internal/synopsis"
	"cinderella/internal/table"
)

// LoadUniversal inserts every row of every TPC-H table into the given
// universal table as an entity. Column names are globally unique in
// TPC-H (l_*, o_*, …), so the attribute sets of the eight tables are
// pairwise disjoint — the setting of the paper's Table I experiment: a
// schema-aware partitioner should recover exactly the TPC-H tables.
// It returns the number of inserted entities.
func LoadUniversal(d *Data, tbl *table.Table) int {
	n := 0
	for _, name := range TableNames {
		schema := Schemas[name]
		attrIDs := make([]int, len(schema))
		for i, col := range schema {
			attrIDs[i] = tbl.Dict().ID(col)
		}
		for _, row := range d.Rows(name) {
			e := &entity.Entity{}
			for i, v := range row {
				e.Set(attrIDs[i], v)
			}
			tbl.Insert(e)
			n++
		}
	}
	return n
}

// ViewSource reconstructs one TPC-H table from a universal table: the
// paper's "views on the partitions created by Cinderella emulated the
// standard TPC-H tables". Rows are assembled by scanning all partitions
// whose attribute synopsis overlaps the table's column set (the UNION ALL
// with pruning) and projecting entities to the table schema.
type ViewSource struct {
	Table *table.Table
	Name  string

	attrIDs []int
	qsyn    *synopsis.Set
}

// NewViewSource builds the view for a TPC-H table name.
func NewViewSource(tbl *table.Table, name string) *ViewSource {
	schema, ok := Schemas[name]
	if !ok {
		panic(fmt.Sprintf("tpch: unknown table %q", name))
	}
	v := &ViewSource{Table: tbl, Name: name}
	for _, col := range schema {
		v.attrIDs = append(v.attrIDs, tbl.Dict().ID(col))
	}
	v.qsyn = synopsis.Of(v.attrIDs...)
	return v
}

// Schema returns the TPC-H schema of the view.
func (v *ViewSource) Schema() engine.Schema { return Schemas[v.Name] }

// Rows scans the union of overlapping partitions, projecting each entity
// of this table to a row. Entities of other tables never share attributes
// with the view, so the key-column check suffices to filter them.
func (v *ViewSource) Rows(fn func(engine.Row) bool) {
	results := v.Table.SelectSynopsis(v.qsyn)
	key := v.attrIDs[0]
	for _, res := range results {
		if !res.Entity.Has(key) {
			continue
		}
		row := make(engine.Row, len(v.attrIDs))
		for i, a := range v.attrIDs {
			val, _ := res.Entity.Get(a)
			row[i] = val
		}
		if !fn(row) {
			return
		}
	}
}

// Catalog resolves table names to row sources; both the materialized
// generator output and the universal-table views implement it, so the 22
// query plans run unchanged on either.
type Catalog interface {
	Source(name string) engine.RowSource
}

// UniversalCatalog serves every TPC-H table as a partition-union view
// over one universal table.
type UniversalCatalog struct {
	Table *table.Table
	views map[string]*ViewSource
}

// NewUniversalCatalog builds views for all TPC-H tables.
func NewUniversalCatalog(tbl *table.Table) *UniversalCatalog {
	c := &UniversalCatalog{Table: tbl, views: map[string]*ViewSource{}}
	for _, name := range TableNames {
		c.views[name] = NewViewSource(tbl, name)
	}
	return c
}

// Source returns the view for name.
func (c *UniversalCatalog) Source(name string) engine.RowSource {
	v, ok := c.views[name]
	if !ok {
		panic(fmt.Sprintf("tpch: unknown table %q", name))
	}
	return v
}

// StoredCatalog is the fair baseline for the Table I experiment: each
// TPC-H table lives in its own stored table (single partition, slotted
// pages), so baseline queries pay the same storage-scan and record-decode
// costs as the Cinderella views. The paper's baseline — regular
// PostgreSQL tables — likewise paid full page scans; comparing Cinderella
// views against raw in-memory slices would overstate the overhead.
type StoredCatalog struct {
	tables map[string]*table.Table
	views  map[string]*ViewSource
}

// NewStoredCatalog loads d into one single-partition stored table per
// TPC-H table.
func NewStoredCatalog(d *Data) *StoredCatalog {
	c := &StoredCatalog{
		tables: map[string]*table.Table{},
		views:  map[string]*ViewSource{},
	}
	for _, name := range TableNames {
		tbl := table.New(table.Config{Partitioner: core.NewSingle(core.SizeCount)})
		schema := Schemas[name]
		attrIDs := make([]int, len(schema))
		for i, col := range schema {
			attrIDs[i] = tbl.Dict().ID(col)
		}
		for _, row := range d.Rows(name) {
			e := &entity.Entity{}
			for i, v := range row {
				e.Set(attrIDs[i], v)
			}
			tbl.Insert(e)
		}
		c.tables[name] = tbl
		c.views[name] = NewViewSource(tbl, name)
	}
	return c
}

// Source returns the stored view for name.
func (c *StoredCatalog) Source(name string) engine.RowSource {
	v, ok := c.views[name]
	if !ok {
		panic(fmt.Sprintf("tpch: unknown table %q", name))
	}
	return v
}

// SchemaPurity reports how well a partitioning recovered the TPC-H
// schema: the number of partitions whose attribute synopsis exactly
// equals one table's column set, and the total partition count. The
// paper observes full purity ("Cinderella finds only partitions which
// exactly fit the TPC-H schema").
func SchemaPurity(tbl *table.Table) (pure, total int) {
	want := make([]*synopsis.Set, 0, len(TableNames))
	for _, name := range TableNames {
		ids := make([]int, 0, len(Schemas[name]))
		for _, col := range Schemas[name] {
			if id, ok := tbl.Dict().Lookup(col); ok {
				ids = append(ids, id)
			}
		}
		want = append(want, synopsis.Of(ids...))
	}
	views := tbl.Partitions()
	for _, pv := range views {
		for _, w := range want {
			if pv.Synopsis.Equal(w) {
				pure++
				break
			}
		}
	}
	return pure, len(views)
}
