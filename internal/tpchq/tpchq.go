// Package tpchq contains hand-built query plans for all 22 TPC-H queries
// against the volcano engine. Each query runs unchanged on a materialized
// catalog (regular tables) or on a universal-table catalog (Cinderella
// partition views), which is exactly the comparison of the paper's
// Table I.
//
// Plans follow the TPC-H 2.16 semantics with the standard validation
// parameter values. Correlated subqueries are implemented by
// decorrelation: grouped subaggregates materialized and hash-joined back,
// the textbook transformation.
package tpchq

import (
	"strings"

	"cinderella/internal/engine"
	"cinderella/internal/entity"
	"cinderella/internal/tpch"
)

// Query is one runnable TPC-H query.
type Query struct {
	Name string
	Run  func(c tpch.Catalog) []engine.Row
}

// All lists the 22 queries in order.
var All = []Query{
	{"Q1", Q1}, {"Q2", Q2}, {"Q3", Q3}, {"Q4", Q4}, {"Q5", Q5},
	{"Q6", Q6}, {"Q7", Q7}, {"Q8", Q8}, {"Q9", Q9}, {"Q10", Q10},
	{"Q11", Q11}, {"Q12", Q12}, {"Q13", Q13}, {"Q14", Q14}, {"Q15", Q15},
	{"Q16", Q16}, {"Q17", Q17}, {"Q18", Q18}, {"Q19", Q19}, {"Q20", Q20},
	{"Q21", Q21}, {"Q22", Q22},
}

// --- small helpers ---

func iv(i int64) engine.Value   { return entity.Int(i) }
func fv(f float64) engine.Value { return entity.Float(f) }
func sv(s string) engine.Value  { return entity.Str(s) }

func scan(c tpch.Catalog, name string) engine.Operator {
	return engine.NewScan(c.Source(name))
}

func filter(in engine.Operator, p engine.Pred) engine.Operator {
	return &engine.Filter{In: in, Cond: p}
}

func join(l, r engine.Operator, lk, rk engine.KeyFunc) engine.Operator {
	return &engine.HashJoin{Left: l, Right: r, LeftKey: lk, RightKey: rk, Type: engine.Inner}
}

func semi(l, r engine.Operator, lk, rk engine.KeyFunc) engine.Operator {
	return &engine.HashJoin{Left: l, Right: r, LeftKey: lk, RightKey: rk, Type: engine.Semi}
}

func anti(l, r engine.Operator, lk, rk engine.KeyFunc) engine.Operator {
	return &engine.HashJoin{Left: l, Right: r, LeftKey: lk, RightKey: rk, Type: engine.Anti}
}

func key(cols ...int) engine.KeyFunc { return engine.KeyCols(cols...) }

func orderLimit(in engine.Operator, less func(a, b engine.Row) bool, n int) []engine.Row {
	var op engine.Operator = &engine.OrderBy{In: in, Less: less}
	if n > 0 {
		op = &engine.Limit{In: op, N: n}
	}
	return engine.Collect(op)
}

// year extracts the calendar year from a day-count value.
func year(days int64) int64 {
	// Days since 1970-01-01; derive year via proleptic Gregorian math.
	// Simpler: walk by quadrennium. TPC-H dates live in 1992–1998, so a
	// small loop is fine and obviously correct.
	y := int64(1970)
	d := days
	for {
		ylen := int64(365)
		if isLeap(y) {
			ylen = 366
		}
		if d < ylen {
			return y
		}
		d -= ylen
		y++
	}
}

func isLeap(y int64) bool {
	return (y%4 == 0 && y%100 != 0) || y%400 == 0
}

// --- Q1: pricing summary report ---

// Q1 aggregates lineitems shipped on or before 1998-09-02 by return flag
// and line status.
func Q1(c tpch.Catalog) []engine.Row {
	cutoff := tpch.Date(1998, 12, 1) - 90
	l := filter(scan(c, tpch.Lineitem), func(r engine.Row) bool {
		return r[tpch.LShipdate].AsInt() <= cutoff
	})
	agg := &engine.HashAggregate{
		In:      l,
		GroupBy: []int{tpch.LReturnflag, tpch.LLinestatus},
		Aggs: []engine.AggSpec{
			{Kind: engine.Sum, Expr: engine.Col(tpch.LQuantity), Name: "sum_qty"},
			{Kind: engine.Sum, Expr: engine.Col(tpch.LExtendedprice), Name: "sum_base_price"},
			{Kind: engine.Sum, Expr: func(r engine.Row) engine.Value {
				return fv(r[tpch.LExtendedprice].AsFloat() * (1 - r[tpch.LDiscount].AsFloat()))
			}, Name: "sum_disc_price"},
			{Kind: engine.Sum, Expr: func(r engine.Row) engine.Value {
				return fv(r[tpch.LExtendedprice].AsFloat() * (1 - r[tpch.LDiscount].AsFloat()) * (1 + r[tpch.LTax].AsFloat()))
			}, Name: "sum_charge"},
			{Kind: engine.Avg, Expr: engine.Col(tpch.LQuantity), Name: "avg_qty"},
			{Kind: engine.Avg, Expr: engine.Col(tpch.LExtendedprice), Name: "avg_price"},
			{Kind: engine.Avg, Expr: engine.Col(tpch.LDiscount), Name: "avg_disc"},
			{Kind: engine.Count, Name: "count_order"},
		},
	}
	return orderLimit(agg, engine.LessBy(0, 1), 0)
}

// --- Q2: minimum cost supplier ---

// Q2 finds, for size-15 parts of type ending in BRASS, the European
// supplier with the minimum supply cost.
func Q2(c tpch.Catalog) []engine.Row {
	// European suppliers: supplier ⨝ nation ⨝ region('EUROPE').
	euRegion := filter(scan(c, tpch.Region), func(r engine.Row) bool {
		return r[tpch.RName].AsString() == "EUROPE"
	})
	euNation := join(scan(c, tpch.Nation), euRegion, key(tpch.NRegionkey), key(tpch.RRegionkey))
	// nation cols 0..3, region cols 4..6.
	euSupp := join(scan(c, tpch.Supplier), euNation, key(tpch.SNationkey), key(tpch.NNationkey))
	// supplier 0..6, nation 7..10, region 11..13.

	// partsupp joined with european suppliers.
	ps := join(scan(c, tpch.PartSupp), euSupp, key(tpch.PSSuppkey), key(7+0 /* s_suppkey */))
	// partsupp 0..4, supplier 5..11, nation 12..15, region 16..18.
	psRows := engine.Collect(ps)

	// Min cost per part over european suppliers.
	minCost := map[int64]float64{}
	for _, r := range psRows {
		pk := r[tpch.PSPartkey].AsInt()
		cost := r[tpch.PSSupplycost].AsFloat()
		if m, ok := minCost[pk]; !ok || cost < m {
			minCost[pk] = cost
		}
	}

	// Target parts.
	parts := filter(scan(c, tpch.Part), func(r engine.Row) bool {
		return r[tpch.PSize].AsInt() == 15 && strings.HasSuffix(r[tpch.PType].AsString(), "BRASS")
	})
	partRows := engine.Collect(parts)
	partByKey := map[int64]engine.Row{}
	for _, p := range partRows {
		partByKey[p[tpch.PPartkey].AsInt()] = p
	}

	var out []engine.Row
	for _, r := range psRows {
		pk := r[tpch.PSPartkey].AsInt()
		p, ok := partByKey[pk]
		if !ok {
			continue
		}
		if r[tpch.PSSupplycost].AsFloat() != minCost[pk] {
			continue
		}
		// s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment
		out = append(out, engine.Row{
			r[5+tpch.SAcctbal], r[5+tpch.SName], r[12+tpch.NName],
			p[tpch.PPartkey], p[tpch.PMfgr], r[5+tpch.SAddress],
			r[5+tpch.SPhone], r[5+tpch.SComment],
		})
	}
	src := &engine.SliceSource{
		Cols: engine.Schema{"s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr", "s_address", "s_phone", "s_comment"},
		Data: out,
	}
	return orderLimit(engine.NewScan(src), engine.LessBy(-1, 2, 1, 3), 100)
}

// --- Q3: shipping priority ---

// Q3 ranks unshipped orders of BUILDING customers by revenue.
func Q3(c tpch.Catalog) []engine.Row {
	date := tpch.Date(1995, 3, 15)
	cust := filter(scan(c, tpch.Customer), func(r engine.Row) bool {
		return r[tpch.CMktsegment].AsString() == "BUILDING"
	})
	ord := filter(scan(c, tpch.Orders), func(r engine.Row) bool {
		return r[tpch.OOrderdate].AsInt() < date
	})
	co := join(ord, cust, key(tpch.OCustkey), key(tpch.CCustkey))
	// orders 0..8, customer 9..16.
	li := filter(scan(c, tpch.Lineitem), func(r engine.Row) bool {
		return r[tpch.LShipdate].AsInt() > date
	})
	lco := join(li, co, key(tpch.LOrderkey), key(tpch.OOrderkey))
	// lineitem 0..15, orders 16..24, customer 25..32.
	agg := &engine.HashAggregate{
		In:      lco,
		GroupBy: []int{tpch.LOrderkey, 16 + tpch.OOrderdate, 16 + tpch.OShippriority},
		Aggs: []engine.AggSpec{{Kind: engine.Sum, Name: "revenue", Expr: func(r engine.Row) engine.Value {
			return fv(r[tpch.LExtendedprice].AsFloat() * (1 - r[tpch.LDiscount].AsFloat()))
		}}},
	}
	// order by revenue desc, orderdate asc; limit 10.
	return orderLimit(agg, engine.LessBy(-4, 1), 10)
}

// --- Q4: order priority checking ---

// Q4 counts Q3-1993 orders with at least one late lineitem, by priority.
func Q4(c tpch.Catalog) []engine.Row {
	lo, hi := tpch.Date(1993, 7, 1), tpch.Date(1993, 10, 1)
	ord := filter(scan(c, tpch.Orders), func(r engine.Row) bool {
		d := r[tpch.OOrderdate].AsInt()
		return d >= lo && d < hi
	})
	late := filter(scan(c, tpch.Lineitem), func(r engine.Row) bool {
		return r[tpch.LCommitdate].AsInt() < r[tpch.LReceiptdate].AsInt()
	})
	exists := semi(ord, late, key(tpch.OOrderkey), key(tpch.LOrderkey))
	agg := &engine.HashAggregate{
		In:      exists,
		GroupBy: []int{tpch.OOrderpriority},
		Aggs:    []engine.AggSpec{{Kind: engine.Count, Name: "order_count"}},
	}
	return orderLimit(agg, engine.LessBy(0), 0)
}

// --- Q5: local supplier volume ---

// Q5 sums 1994 revenue in ASIA where customer and supplier share a nation.
func Q5(c tpch.Catalog) []engine.Row {
	lo, hi := tpch.Date(1994, 1, 1), tpch.Date(1995, 1, 1)
	asia := filter(scan(c, tpch.Region), func(r engine.Row) bool {
		return r[tpch.RName].AsString() == "ASIA"
	})
	nat := join(scan(c, tpch.Nation), asia, key(tpch.NRegionkey), key(tpch.RRegionkey))
	// nation 0..3, region 4..6
	sup := join(scan(c, tpch.Supplier), nat, key(tpch.SNationkey), key(tpch.NNationkey))
	// supplier 0..6, nation 7..10, region 11..13
	li := join(scan(c, tpch.Lineitem), sup, key(tpch.LSuppkey), key(tpch.SSuppkey))
	// lineitem 0..15, supplier 16..22, nation 23..26, region 27..29
	ord := filter(scan(c, tpch.Orders), func(r engine.Row) bool {
		d := r[tpch.OOrderdate].AsInt()
		return d >= lo && d < hi
	})
	lo1 := join(li, ord, key(tpch.LOrderkey), key(tpch.OOrderkey))
	// ... orders at 30..38
	const oCust = 30 + tpch.OCustkey
	const sNation = 16 + tpch.SNationkey
	// join customer on custkey AND same nation as supplier.
	final := &engine.HashJoin{
		Left:     lo1,
		Right:    scan(c, tpch.Customer),
		LeftKey:  key(oCust),
		RightKey: key(tpch.CCustkey),
		Type:     engine.Inner,
		Extra: func(l, r engine.Row) bool {
			return l[sNation].AsInt() == r[tpch.CNationkey].AsInt()
		},
	}
	const nName = 23 + tpch.NName
	agg := &engine.HashAggregate{
		In:      final,
		GroupBy: []int{nName},
		Aggs: []engine.AggSpec{{Kind: engine.Sum, Name: "revenue", Expr: func(r engine.Row) engine.Value {
			return fv(r[tpch.LExtendedprice].AsFloat() * (1 - r[tpch.LDiscount].AsFloat()))
		}}},
	}
	return orderLimit(agg, engine.LessBy(-2), 0)
}

// --- Q6: forecasting revenue change ---

// Q6 sums discount revenue for 1994 lineitems with discount 0.05–0.07 and
// quantity < 24.
func Q6(c tpch.Catalog) []engine.Row {
	lo, hi := tpch.Date(1994, 1, 1), tpch.Date(1995, 1, 1)
	l := filter(scan(c, tpch.Lineitem), func(r engine.Row) bool {
		d := r[tpch.LShipdate].AsInt()
		disc := r[tpch.LDiscount].AsFloat()
		return d >= lo && d < hi &&
			disc >= 0.05-1e-9 && disc <= 0.07+1e-9 &&
			r[tpch.LQuantity].AsFloat() < 24
	})
	return []engine.Row{engine.ScalarAgg(l, engine.AggSpec{
		Kind: engine.Sum, Name: "revenue",
		Expr: func(r engine.Row) engine.Value {
			return fv(r[tpch.LExtendedprice].AsFloat() * r[tpch.LDiscount].AsFloat())
		},
	})}
}

// --- Q7: volume shipping ---

// Q7 computes France↔Germany shipping volume by year (1995–1996).
func Q7(c tpch.Catalog) []engine.Row {
	lo, hi := tpch.Date(1995, 1, 1), tpch.Date(1996, 12, 31)
	li := filter(scan(c, tpch.Lineitem), func(r engine.Row) bool {
		d := r[tpch.LShipdate].AsInt()
		return d >= lo && d <= hi
	})
	sup := join(scan(c, tpch.Supplier), scan(c, tpch.Nation), key(tpch.SNationkey), key(tpch.NNationkey))
	// supplier 0..6, nation 7..10
	ls := join(li, sup, key(tpch.LSuppkey), key(tpch.SSuppkey))
	// lineitem 0..15, supplier 16..22, suppnation 23..26
	lso := join(ls, scan(c, tpch.Orders), key(tpch.LOrderkey), key(tpch.OOrderkey))
	// + orders 27..35
	cust := join(scan(c, tpch.Customer), scan(c, tpch.Nation), key(tpch.CNationkey), key(tpch.NNationkey))
	// customer 0..7, custnation 8..11
	full := join(lso, cust, key(27+tpch.OCustkey), key(tpch.CCustkey))
	// + customer 36..43, custnation 44..47
	const suppNation = 23 + tpch.NName
	const custNation = 44 + tpch.NName
	pairs := filter(full, func(r engine.Row) bool {
		s, k := r[suppNation].AsString(), r[custNation].AsString()
		return (s == "FRANCE" && k == "GERMANY") || (s == "GERMANY" && k == "FRANCE")
	})
	proj := &engine.Project{
		In:   pairs,
		Cols: engine.Schema{"supp_nation", "cust_nation", "l_year", "volume"},
		Exprs: []engine.Expr{
			engine.Col(suppNation),
			engine.Col(custNation),
			func(r engine.Row) engine.Value { return iv(year(r[tpch.LShipdate].AsInt())) },
			func(r engine.Row) engine.Value {
				return fv(r[tpch.LExtendedprice].AsFloat() * (1 - r[tpch.LDiscount].AsFloat()))
			},
		},
	}
	agg := &engine.HashAggregate{
		In:      proj,
		GroupBy: []int{0, 1, 2},
		Aggs:    []engine.AggSpec{{Kind: engine.Sum, Expr: engine.Col(3), Name: "revenue"}},
	}
	return orderLimit(agg, engine.LessBy(0, 1, 2), 0)
}

// --- Q8: national market share ---

// Q8 computes BRAZIL's share of AMERICA's ECONOMY ANODIZED STEEL market.
func Q8(c tpch.Catalog) []engine.Row {
	lo, hi := tpch.Date(1995, 1, 1), tpch.Date(1996, 12, 31)
	part := filter(scan(c, tpch.Part), func(r engine.Row) bool {
		return r[tpch.PType].AsString() == "ECONOMY ANODIZED STEEL"
	})
	li := join(scan(c, tpch.Lineitem), part, key(tpch.LPartkey), key(tpch.PPartkey))
	// lineitem 0..15, part 16..24
	sup := join(scan(c, tpch.Supplier), scan(c, tpch.Nation), key(tpch.SNationkey), key(tpch.NNationkey))
	lis := join(li, sup, key(tpch.LSuppkey), key(tpch.SSuppkey))
	// + supplier 25..31, suppnation 32..35
	ord := filter(scan(c, tpch.Orders), func(r engine.Row) bool {
		d := r[tpch.OOrderdate].AsInt()
		return d >= lo && d <= hi
	})
	liso := join(lis, ord, key(tpch.LOrderkey), key(tpch.OOrderkey))
	// + orders 36..44
	amRegion := filter(scan(c, tpch.Region), func(r engine.Row) bool {
		return r[tpch.RName].AsString() == "AMERICA"
	})
	amNation := join(scan(c, tpch.Nation), amRegion, key(tpch.NRegionkey), key(tpch.RRegionkey))
	amCust := join(scan(c, tpch.Customer), amNation, key(tpch.CNationkey), key(tpch.NNationkey))
	full := join(liso, amCust, key(36+tpch.OCustkey), key(tpch.CCustkey))
	// + customer 45..52, custnation 53..56, region 57..59
	const suppNationName = 32 + tpch.NName
	proj := &engine.Project{
		In:   full,
		Cols: engine.Schema{"o_year", "volume", "is_brazil"},
		Exprs: []engine.Expr{
			func(r engine.Row) engine.Value { return iv(year(r[36+tpch.OOrderdate].AsInt())) },
			func(r engine.Row) engine.Value {
				return fv(r[tpch.LExtendedprice].AsFloat() * (1 - r[tpch.LDiscount].AsFloat()))
			},
			func(r engine.Row) engine.Value {
				if r[suppNationName].AsString() == "BRAZIL" {
					return iv(1)
				}
				return iv(0)
			},
		},
	}
	agg := &engine.HashAggregate{
		In:      proj,
		GroupBy: []int{0},
		Aggs: []engine.AggSpec{
			{Kind: engine.Sum, Name: "brazil_volume", Expr: func(r engine.Row) engine.Value {
				if r[2].AsInt() == 1 {
					return r[1]
				}
				return fv(0)
			}},
			{Kind: engine.Sum, Expr: engine.Col(1), Name: "total_volume"},
		},
	}
	rows := engine.Collect(&engine.OrderBy{In: agg, Less: engine.LessBy(0)})
	out := make([]engine.Row, 0, len(rows))
	for _, r := range rows {
		share := 0.0
		if tot := r[2].AsFloat(); tot != 0 {
			share = r[1].AsFloat() / tot
		}
		out = append(out, engine.Row{r[0], fv(share)})
	}
	return out
}

// --- Q9: product type profit measure ---

// Q9 computes profit by nation and year for parts with "green" in the
// name.
func Q9(c tpch.Catalog) []engine.Row {
	part := filter(scan(c, tpch.Part), func(r engine.Row) bool {
		return strings.Contains(r[tpch.PName].AsString(), "green")
	})
	li := join(scan(c, tpch.Lineitem), part, key(tpch.LPartkey), key(tpch.PPartkey))
	// lineitem 0..15, part 16..24
	sup := join(scan(c, tpch.Supplier), scan(c, tpch.Nation), key(tpch.SNationkey), key(tpch.NNationkey))
	lis := join(li, sup, key(tpch.LSuppkey), key(tpch.SSuppkey))
	// + supplier 25..31, nation 32..35
	lisp := &engine.HashJoin{
		Left: lis, Right: scan(c, tpch.PartSupp),
		LeftKey:  engine.KeyCols(tpch.LPartkey, tpch.LSuppkey),
		RightKey: engine.KeyCols(tpch.PSPartkey, tpch.PSSuppkey),
		Type:     engine.Inner,
	}
	// + partsupp 36..40
	lispo := join(lisp, scan(c, tpch.Orders), key(tpch.LOrderkey), key(tpch.OOrderkey))
	// + orders 41..49
	proj := &engine.Project{
		In:   lispo,
		Cols: engine.Schema{"nation", "o_year", "amount"},
		Exprs: []engine.Expr{
			engine.Col(32 + tpch.NName),
			func(r engine.Row) engine.Value { return iv(year(r[41+tpch.OOrderdate].AsInt())) },
			func(r engine.Row) engine.Value {
				return fv(r[tpch.LExtendedprice].AsFloat()*(1-r[tpch.LDiscount].AsFloat()) -
					r[36+tpch.PSSupplycost].AsFloat()*r[tpch.LQuantity].AsFloat())
			},
		},
	}
	agg := &engine.HashAggregate{
		In:      proj,
		GroupBy: []int{0, 1},
		Aggs:    []engine.AggSpec{{Kind: engine.Sum, Expr: engine.Col(2), Name: "sum_profit"}},
	}
	return orderLimit(agg, engine.LessBy(0, -2), 0)
}

// --- Q10: returned item reporting ---

// Q10 ranks customers by revenue lost to returned items in Q4 1993.
func Q10(c tpch.Catalog) []engine.Row {
	lo, hi := tpch.Date(1993, 10, 1), tpch.Date(1994, 1, 1)
	ord := filter(scan(c, tpch.Orders), func(r engine.Row) bool {
		d := r[tpch.OOrderdate].AsInt()
		return d >= lo && d < hi
	})
	li := filter(scan(c, tpch.Lineitem), func(r engine.Row) bool {
		return r[tpch.LReturnflag].AsString() == "R"
	})
	lio := join(li, ord, key(tpch.LOrderkey), key(tpch.OOrderkey))
	// lineitem 0..15, orders 16..24
	cust := join(scan(c, tpch.Customer), scan(c, tpch.Nation), key(tpch.CNationkey), key(tpch.NNationkey))
	// customer 0..7, nation 8..11
	full := join(lio, cust, key(16+tpch.OCustkey), key(tpch.CCustkey))
	// + customer 25..32, nation 33..36
	agg := &engine.HashAggregate{
		In: full,
		GroupBy: []int{
			25 + tpch.CCustkey, 25 + tpch.CName, 25 + tpch.CAcctbal,
			25 + tpch.CPhone, 33 + tpch.NName, 25 + tpch.CAddress,
			25 + tpch.CComment,
		},
		Aggs: []engine.AggSpec{{Kind: engine.Sum, Name: "revenue", Expr: func(r engine.Row) engine.Value {
			return fv(r[tpch.LExtendedprice].AsFloat() * (1 - r[tpch.LDiscount].AsFloat()))
		}}},
	}
	return orderLimit(agg, engine.LessBy(-8), 20)
}

// --- Q11: important stock identification ---

// Q11 finds German partsupp value concentrations above 1/10000 of total.
func Q11(c tpch.Catalog) []engine.Row {
	germany := filter(scan(c, tpch.Nation), func(r engine.Row) bool {
		return r[tpch.NName].AsString() == "GERMANY"
	})
	sup := join(scan(c, tpch.Supplier), germany, key(tpch.SNationkey), key(tpch.NNationkey))
	ps := join(scan(c, tpch.PartSupp), sup, key(tpch.PSSuppkey), key(tpch.SSuppkey))
	value := func(r engine.Row) engine.Value {
		return fv(r[tpch.PSSupplycost].AsFloat() * float64(r[tpch.PSAvailqty].AsInt()))
	}
	rows := engine.Collect(ps)
	var total float64
	perPart := map[int64]float64{}
	for _, r := range rows {
		v := value(r).AsFloat()
		total += v
		perPart[r[tpch.PSPartkey].AsInt()] += v
	}
	threshold := total * 0.0001
	var out []engine.Row
	for pk, v := range perPart {
		if v > threshold {
			out = append(out, engine.Row{iv(pk), fv(v)})
		}
	}
	src := &engine.SliceSource{Cols: engine.Schema{"ps_partkey", "value"}, Data: out}
	return orderLimit(engine.NewScan(src), engine.LessBy(-2, 0), 0)
}
