package tpchq

import (
	"strings"

	"cinderella/internal/engine"
	"cinderella/internal/tpch"
)

// --- Q12: shipping modes and order priority ---

// Q12 counts late-committed lineitems shipped by MAIL/SHIP in 1994 split
// into high- and low-priority orders.
func Q12(c tpch.Catalog) []engine.Row {
	lo, hi := tpch.Date(1994, 1, 1), tpch.Date(1995, 1, 1)
	li := filter(scan(c, tpch.Lineitem), func(r engine.Row) bool {
		m := r[tpch.LShipmode].AsString()
		rd := r[tpch.LReceiptdate].AsInt()
		return (m == "MAIL" || m == "SHIP") &&
			r[tpch.LCommitdate].AsInt() < rd &&
			r[tpch.LShipdate].AsInt() < r[tpch.LCommitdate].AsInt() &&
			rd >= lo && rd < hi
	})
	lio := join(li, scan(c, tpch.Orders), key(tpch.LOrderkey), key(tpch.OOrderkey))
	const oPrio = 16 + tpch.OOrderpriority
	agg := &engine.HashAggregate{
		In:      lio,
		GroupBy: []int{tpch.LShipmode},
		Aggs: []engine.AggSpec{
			{Kind: engine.Sum, Name: "high_line_count", Expr: func(r engine.Row) engine.Value {
				p := r[oPrio].AsString()
				if p == "1-URGENT" || p == "2-HIGH" {
					return iv(1)
				}
				return iv(0)
			}},
			{Kind: engine.Sum, Name: "low_line_count", Expr: func(r engine.Row) engine.Value {
				p := r[oPrio].AsString()
				if p != "1-URGENT" && p != "2-HIGH" {
					return iv(1)
				}
				return iv(0)
			}},
		},
	}
	return orderLimit(agg, engine.LessBy(0), 0)
}

// --- Q13: customer distribution ---

// Q13 histograms customers by their count of non-special orders.
func Q13(c tpch.Catalog) []engine.Row {
	ord := filter(scan(c, tpch.Orders), func(r engine.Row) bool {
		cm := r[tpch.OComment].AsString()
		i := strings.Index(cm, "special")
		return i < 0 || !strings.Contains(cm[i:], "requests")
	})
	lj := &engine.HashJoin{
		Left:     scan(c, tpch.Customer),
		Right:    ord,
		LeftKey:  key(tpch.CCustkey),
		RightKey: key(tpch.OCustkey),
		Type:     engine.LeftOuter,
	}
	// customer 0..7, orders 8..16
	perCust := &engine.HashAggregate{
		In:      lj,
		GroupBy: []int{tpch.CCustkey},
		Aggs: []engine.AggSpec{{
			Kind: engine.Count, Expr: engine.Col(8 + tpch.OOrderkey), Name: "c_count",
		}},
	}
	hist := &engine.HashAggregate{
		In:      perCust,
		GroupBy: []int{1},
		Aggs:    []engine.AggSpec{{Kind: engine.Count, Name: "custdist"}},
	}
	return orderLimit(hist, engine.LessBy(-2, -1), 0)
}

// --- Q14: promotion effect ---

// Q14 computes the promo revenue percentage for September 1995.
func Q14(c tpch.Catalog) []engine.Row {
	lo, hi := tpch.Date(1995, 9, 1), tpch.Date(1995, 10, 1)
	li := filter(scan(c, tpch.Lineitem), func(r engine.Row) bool {
		d := r[tpch.LShipdate].AsInt()
		return d >= lo && d < hi
	})
	lp := join(li, scan(c, tpch.Part), key(tpch.LPartkey), key(tpch.PPartkey))
	const pType = 16 + tpch.PType
	row := engine.ScalarAgg(lp,
		engine.AggSpec{Kind: engine.Sum, Name: "promo", Expr: func(r engine.Row) engine.Value {
			if strings.HasPrefix(r[pType].AsString(), "PROMO") {
				return fv(r[tpch.LExtendedprice].AsFloat() * (1 - r[tpch.LDiscount].AsFloat()))
			}
			return fv(0)
		}},
		engine.AggSpec{Kind: engine.Sum, Name: "total", Expr: func(r engine.Row) engine.Value {
			return fv(r[tpch.LExtendedprice].AsFloat() * (1 - r[tpch.LDiscount].AsFloat()))
		}},
	)
	pct := 0.0
	if t := row[1].AsFloat(); t != 0 {
		pct = 100 * row[0].AsFloat() / t
	}
	return []engine.Row{{fv(pct)}}
}

// --- Q15: top supplier ---

// Q15 finds the supplier(s) with maximal Q1-1996 revenue.
func Q15(c tpch.Catalog) []engine.Row {
	lo, hi := tpch.Date(1996, 1, 1), tpch.Date(1996, 4, 1)
	li := filter(scan(c, tpch.Lineitem), func(r engine.Row) bool {
		d := r[tpch.LShipdate].AsInt()
		return d >= lo && d < hi
	})
	rev := &engine.HashAggregate{
		In:      li,
		GroupBy: []int{tpch.LSuppkey},
		Aggs: []engine.AggSpec{{Kind: engine.Sum, Name: "total_revenue", Expr: func(r engine.Row) engine.Value {
			return fv(r[tpch.LExtendedprice].AsFloat() * (1 - r[tpch.LDiscount].AsFloat()))
		}}},
	}
	revRows := engine.Collect(rev)
	maxRev := 0.0
	for _, r := range revRows {
		if v := r[1].AsFloat(); v > maxRev {
			maxRev = v
		}
	}
	top := &engine.SliceSource{Cols: engine.Schema{"supplier_no", "total_revenue"}}
	for _, r := range revRows {
		if r[1].AsFloat() == maxRev {
			top.Data = append(top.Data, r)
		}
	}
	j := join(scan(c, tpch.Supplier), engine.NewScan(top), key(tpch.SSuppkey), key(0))
	// supplier 0..6, revenue view 7..8
	proj := &engine.Project{
		In:   j,
		Cols: engine.Schema{"s_suppkey", "s_name", "s_address", "s_phone", "total_revenue"},
		Exprs: []engine.Expr{
			engine.Col(tpch.SSuppkey), engine.Col(tpch.SName),
			engine.Col(tpch.SAddress), engine.Col(tpch.SPhone), engine.Col(8),
		},
	}
	return orderLimit(proj, engine.LessBy(0), 0)
}

// --- Q16: parts/supplier relationship ---

// Q16 counts distinct acceptable suppliers per brand/type/size bucket.
func Q16(c tpch.Catalog) []engine.Row {
	sizes := map[int64]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}
	part := filter(scan(c, tpch.Part), func(r engine.Row) bool {
		return r[tpch.PBrand].AsString() != "Brand#45" &&
			!strings.HasPrefix(r[tpch.PType].AsString(), "MEDIUM POLISHED") &&
			sizes[r[tpch.PSize].AsInt()]
	})
	complainers := filter(scan(c, tpch.Supplier), func(r engine.Row) bool {
		cm := r[tpch.SComment].AsString()
		i := strings.Index(cm, "Customer")
		return i >= 0 && strings.Contains(cm[i:], "Complaints")
	})
	ps := anti(scan(c, tpch.PartSupp), complainers, key(tpch.PSSuppkey), key(tpch.SSuppkey))
	psp := join(ps, part, key(tpch.PSPartkey), key(tpch.PPartkey))
	// partsupp 0..4, part 5..13
	agg := &engine.HashAggregate{
		In:      psp,
		GroupBy: []int{5 + tpch.PBrand, 5 + tpch.PType, 5 + tpch.PSize},
		Aggs: []engine.AggSpec{{
			Kind: engine.CountDistinct, Expr: engine.Col(tpch.PSSuppkey), Name: "supplier_cnt",
		}},
	}
	return orderLimit(agg, engine.LessBy(-4, 0, 1, 2), 0)
}

// --- Q17: small-quantity-order revenue ---

// Q17 averages yearly revenue lost if small orders of Brand#23 MED BOX
// parts were not filled.
func Q17(c tpch.Catalog) []engine.Row {
	part := filter(scan(c, tpch.Part), func(r engine.Row) bool {
		return r[tpch.PBrand].AsString() == "Brand#23" &&
			r[tpch.PContainer].AsString() == "MED BOX"
	})
	lp := join(scan(c, tpch.Lineitem), part, key(tpch.LPartkey), key(tpch.PPartkey))
	rows := engine.Collect(lp)
	// avg quantity per part (decorrelated subquery).
	sum := map[int64]float64{}
	cnt := map[int64]int64{}
	lineAll := engine.Collect(scan(c, tpch.Lineitem))
	for _, r := range lineAll {
		pk := r[tpch.LPartkey].AsInt()
		sum[pk] += r[tpch.LQuantity].AsFloat()
		cnt[pk]++
	}
	var total float64
	for _, r := range rows {
		pk := r[tpch.LPartkey].AsInt()
		if cnt[pk] == 0 {
			continue
		}
		if r[tpch.LQuantity].AsFloat() < 0.2*sum[pk]/float64(cnt[pk]) {
			total += r[tpch.LExtendedprice].AsFloat()
		}
	}
	return []engine.Row{{fv(total / 7.0)}}
}

// --- Q18: large volume customer ---

// Q18 lists customers with orders totalling more than 300 units.
func Q18(c tpch.Catalog) []engine.Row {
	perOrder := &engine.HashAggregate{
		In:      scan(c, tpch.Lineitem),
		GroupBy: []int{tpch.LOrderkey},
		Aggs:    []engine.AggSpec{{Kind: engine.Sum, Expr: engine.Col(tpch.LQuantity), Name: "qty"}},
	}
	big := filter(perOrder, func(r engine.Row) bool { return r[1].AsFloat() > 300 })
	ord := join(scan(c, tpch.Orders), big, key(tpch.OOrderkey), key(0))
	// orders 0..8, agg 9..10
	oc := join(ord, scan(c, tpch.Customer), key(tpch.OCustkey), key(tpch.CCustkey))
	// + customer 11..18
	proj := &engine.Project{
		In: oc,
		Cols: engine.Schema{
			"c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "sum_qty",
		},
		Exprs: []engine.Expr{
			engine.Col(11 + tpch.CName), engine.Col(11 + tpch.CCustkey),
			engine.Col(tpch.OOrderkey), engine.Col(tpch.OOrderdate),
			engine.Col(tpch.OTotalprice), engine.Col(10),
		},
	}
	return orderLimit(proj, engine.LessBy(-5, 3), 100)
}

// --- Q19: discounted revenue ---

// Q19 sums revenue matching three brand/container/quantity OR branches.
func Q19(c tpch.Catalog) []engine.Row {
	lp := &engine.HashJoin{
		Left:     scan(c, tpch.Lineitem),
		Right:    scan(c, tpch.Part),
		LeftKey:  key(tpch.LPartkey),
		RightKey: key(tpch.PPartkey),
		Type:     engine.Inner,
	}
	const p = 16
	sm := map[string]bool{"SM CASE": true, "SM BOX": true, "SM PACK": true, "SM PKG": true}
	med := map[string]bool{"MED BAG": true, "MED BOX": true, "MED PKG": true, "MED PACK": true}
	lg := map[string]bool{"LG CASE": true, "LG BOX": true, "LG PACK": true, "LG PKG": true}
	match := filter(lp, func(r engine.Row) bool {
		mode := r[tpch.LShipmode].AsString()
		if (mode != "AIR" && mode != "REG AIR") ||
			r[tpch.LShipinstruct].AsString() != "DELIVER IN PERSON" {
			return false
		}
		qty := r[tpch.LQuantity].AsFloat()
		brand := r[p+tpch.PBrand].AsString()
		cont := r[p+tpch.PContainer].AsString()
		size := r[p+tpch.PSize].AsInt()
		switch {
		case brand == "Brand#12" && sm[cont] && qty >= 1 && qty <= 11 && size >= 1 && size <= 5:
			return true
		case brand == "Brand#23" && med[cont] && qty >= 10 && qty <= 20 && size >= 1 && size <= 10:
			return true
		case brand == "Brand#34" && lg[cont] && qty >= 20 && qty <= 30 && size >= 1 && size <= 15:
			return true
		}
		return false
	})
	return []engine.Row{engine.ScalarAgg(match, engine.AggSpec{
		Kind: engine.Sum, Name: "revenue",
		Expr: func(r engine.Row) engine.Value {
			return fv(r[tpch.LExtendedprice].AsFloat() * (1 - r[tpch.LDiscount].AsFloat()))
		},
	})}
}

// --- Q20: potential part promotion ---

// Q20 lists Canadian suppliers holding excess stock of "forest" parts.
func Q20(c tpch.Catalog) []engine.Row {
	// Shipped quantity per (part, supp) in 1994.
	lo, hi := tpch.Date(1994, 1, 1), tpch.Date(1995, 1, 1)
	li := filter(scan(c, tpch.Lineitem), func(r engine.Row) bool {
		d := r[tpch.LShipdate].AsInt()
		return d >= lo && d < hi
	})
	shipped := &engine.HashAggregate{
		In:      li,
		GroupBy: []int{tpch.LPartkey, tpch.LSuppkey},
		Aggs:    []engine.AggSpec{{Kind: engine.Sum, Expr: engine.Col(tpch.LQuantity), Name: "qty"}},
	}
	// Forest parts.
	forest := filter(scan(c, tpch.Part), func(r engine.Row) bool {
		return strings.HasPrefix(r[tpch.PName].AsString(), "forest")
	})
	// partsupp restricted to forest parts, joined with shipped agg on
	// (part, supp), availqty > 0.5 * qty.
	psForest := semi(scan(c, tpch.PartSupp), forest, key(tpch.PSPartkey), key(tpch.PPartkey))
	psq := &engine.HashJoin{
		Left:     psForest,
		Right:    shipped,
		LeftKey:  engine.KeyCols(tpch.PSPartkey, tpch.PSSuppkey),
		RightKey: engine.KeyCols(0, 1),
		Type:     engine.Inner,
		Extra: func(l, r engine.Row) bool {
			return float64(l[tpch.PSAvailqty].AsInt()) > 0.5*r[2].AsFloat()
		},
	}
	canada := filter(scan(c, tpch.Nation), func(r engine.Row) bool {
		return r[tpch.NName].AsString() == "CANADA"
	})
	supCanada := join(scan(c, tpch.Supplier), canada, key(tpch.SNationkey), key(tpch.NNationkey))
	final := semi(supCanada, psq, key(tpch.SSuppkey), key(tpch.PSSuppkey))
	proj := &engine.Project{
		In:    final,
		Cols:  engine.Schema{"s_name", "s_address"},
		Exprs: []engine.Expr{engine.Col(tpch.SName), engine.Col(tpch.SAddress)},
	}
	return orderLimit(proj, engine.LessBy(0), 0)
}

// --- Q21: suppliers who kept orders waiting ---

// Q21 counts, per Saudi supplier, multi-supplier F-orders where only that
// supplier delivered late.
func Q21(c tpch.Catalog) []engine.Row {
	saudi := filter(scan(c, tpch.Nation), func(r engine.Row) bool {
		return r[tpch.NName].AsString() == "SAUDI ARABIA"
	})
	sup := join(scan(c, tpch.Supplier), saudi, key(tpch.SNationkey), key(tpch.NNationkey))
	// supplier 0..6, nation 7..10
	l1 := filter(scan(c, tpch.Lineitem), func(r engine.Row) bool {
		return r[tpch.LReceiptdate].AsInt() > r[tpch.LCommitdate].AsInt()
	})
	ls := join(l1, sup, key(tpch.LSuppkey), key(tpch.SSuppkey))
	// lineitem 0..15, supplier 16..22, nation 23..26
	fOrders := filter(scan(c, tpch.Orders), func(r engine.Row) bool {
		return r[tpch.OOrderstatus].AsString() == "F"
	})
	lso := join(ls, fOrders, key(tpch.LOrderkey), key(tpch.OOrderkey))
	// + orders 27..35

	// exists l2: another supplier on the same order.
	l2 := scan(c, tpch.Lineitem)
	withOther := &engine.HashJoin{
		Left:     lso,
		Right:    l2,
		LeftKey:  key(tpch.LOrderkey),
		RightKey: key(tpch.LOrderkey),
		Type:     engine.Semi,
		Extra: func(l, r engine.Row) bool {
			return r[tpch.LSuppkey].AsInt() != l[tpch.LSuppkey].AsInt()
		},
	}
	// not exists l3: another supplier late on the same order.
	l3 := filter(scan(c, tpch.Lineitem), func(r engine.Row) bool {
		return r[tpch.LReceiptdate].AsInt() > r[tpch.LCommitdate].AsInt()
	})
	onlyUs := &engine.HashJoin{
		Left:     withOther,
		Right:    l3,
		LeftKey:  key(tpch.LOrderkey),
		RightKey: key(tpch.LOrderkey),
		Type:     engine.Anti,
		Extra: func(l, r engine.Row) bool {
			return r[tpch.LSuppkey].AsInt() != l[tpch.LSuppkey].AsInt()
		},
	}
	agg := &engine.HashAggregate{
		In:      onlyUs,
		GroupBy: []int{16 + tpch.SName},
		Aggs:    []engine.AggSpec{{Kind: engine.Count, Name: "numwait"}},
	}
	return orderLimit(agg, engine.LessBy(-2, 0), 100)
}

// --- Q22: global sales opportunity ---

// Q22 profiles wealthy inactive customers by phone country code.
func Q22(c tpch.Catalog) []engine.Row {
	codes := map[string]bool{"13": true, "31": true, "23": true, "29": true, "30": true, "18": true, "17": true}
	cc := func(phone string) string {
		if i := strings.IndexByte(phone, '-'); i > 0 {
			return phone[:i]
		}
		return ""
	}
	cust := filter(scan(c, tpch.Customer), func(r engine.Row) bool {
		return codes[cc(r[tpch.CPhone].AsString())]
	})
	custRows := engine.Collect(cust)

	// avg positive acctbal among those customers.
	var sum float64
	var n int64
	for _, r := range custRows {
		if b := r[tpch.CAcctbal].AsFloat(); b > 0 {
			sum += b
			n++
		}
	}
	avg := 0.0
	if n > 0 {
		avg = sum / float64(n)
	}
	rich := &engine.SliceSource{Cols: tpch.Schemas[tpch.Customer]}
	for _, r := range custRows {
		if r[tpch.CAcctbal].AsFloat() > avg {
			rich.Data = append(rich.Data, r)
		}
	}
	noOrders := anti(engine.NewScan(rich), scan(c, tpch.Orders), key(tpch.CCustkey), key(tpch.OCustkey))
	proj := &engine.Project{
		In:   noOrders,
		Cols: engine.Schema{"cntrycode", "c_acctbal"},
		Exprs: []engine.Expr{
			func(r engine.Row) engine.Value { return sv(cc(r[tpch.CPhone].AsString())) },
			engine.Col(tpch.CAcctbal),
		},
	}
	agg := &engine.HashAggregate{
		In:      proj,
		GroupBy: []int{0},
		Aggs: []engine.AggSpec{
			{Kind: engine.Count, Name: "numcust"},
			{Kind: engine.Sum, Expr: engine.Col(1), Name: "totacctbal"},
		},
	}
	return orderLimit(agg, engine.LessBy(0), 0)
}
