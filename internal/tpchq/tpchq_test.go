package tpchq

import (
	"sync"
	"testing"

	"cinderella/internal/core"
	"cinderella/internal/engine"
	"cinderella/internal/table"
	"cinderella/internal/tpch"
)

var (
	dataOnce sync.Once
	data     *tpch.Data
	uniCat   *tpch.UniversalCatalog
)

func catalogs(t *testing.T) (*tpch.Data, *tpch.UniversalCatalog) {
	t.Helper()
	dataOnce.Do(func() {
		data = tpch.Generate(0.002, 1)
		tbl := table.New(table.Config{
			Partitioner: core.NewCinderella(core.Config{Weight: 0.5, MaxSize: 1000}),
		})
		tpch.LoadUniversal(data, tbl)
		uniCat = tpch.NewUniversalCatalog(tbl)
	})
	return data, uniCat
}

func rowsEqual(a, b []engine.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			if x.Kind() != y.Kind() {
				return false
			}
			// Floats accumulated in different orders can differ in the
			// last ulps; compare with a tolerance.
			if fx, fy := x.AsFloat(), y.AsFloat(); x.Kind() == y.Kind() && !x.IsNull() && x.String() != y.String() {
				diff := fx - fy
				if diff < 0 {
					diff = -diff
				}
				scale := fx
				if scale < 0 {
					scale = -scale
				}
				if scale < 1 {
					scale = 1
				}
				if diff/scale > 1e-9 {
					return false
				}
			}
		}
	}
	return true
}

// TestQueriesAgreeAcrossCatalogs is the load-bearing correctness test of
// the TPC-H reproduction: every query must return identical results on
// the regular tables and on the Cinderella universal-table views.
func TestQueriesAgreeAcrossCatalogs(t *testing.T) {
	d, u := catalogs(t)
	for _, q := range All {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			want := q.Run(d)
			got := q.Run(u)
			if !rowsEqual(want, got) {
				t.Fatalf("%s: universal-table result differs\nregular:   %v rows\nuniversal: %v rows", q.Name, len(want), len(got))
			}
		})
	}
}

func TestAllHas22Queries(t *testing.T) {
	if len(All) != 22 {
		t.Fatalf("All = %d queries, want 22", len(All))
	}
	seen := map[string]bool{}
	for _, q := range All {
		if seen[q.Name] {
			t.Fatalf("duplicate query %s", q.Name)
		}
		seen[q.Name] = true
		if q.Run == nil {
			t.Fatalf("%s has nil Run", q.Name)
		}
	}
}

func TestQ1Shape(t *testing.T) {
	d, _ := catalogs(t)
	rows := Q1(d)
	// Return flag × line status yields at most 4 populated combinations
	// (R/F, A/F, N/F, N/O).
	if len(rows) == 0 || len(rows) > 4 {
		t.Fatalf("Q1 groups = %d", len(rows))
	}
	for _, r := range rows {
		if r[2].AsFloat() <= 0 { // sum_qty
			t.Fatalf("Q1 non-positive sum_qty: %v", r)
		}
		if r[9].AsInt() <= 0 { // count_order
			t.Fatalf("Q1 non-positive count: %v", r)
		}
		// avg_qty = sum_qty / count.
		if diff := r[6].AsFloat() - r[2].AsFloat()/float64(r[9].AsInt()); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("Q1 avg inconsistent: %v", r)
		}
	}
}

func TestQ1CutoffRespected(t *testing.T) {
	d, _ := catalogs(t)
	cutoff := tpch.Date(1998, 12, 1) - 90
	var inCount int64
	for _, l := range d.Rows(tpch.Lineitem) {
		if l[tpch.LShipdate].AsInt() <= cutoff {
			inCount++
		}
	}
	rows := Q1(d)
	var total int64
	for _, r := range rows {
		total += r[9].AsInt()
	}
	if total != inCount {
		t.Fatalf("Q1 counted %d lineitems, want %d", total, inCount)
	}
}

func TestQ3Ordering(t *testing.T) {
	d, _ := catalogs(t)
	rows := Q3(d)
	if len(rows) > 10 {
		t.Fatalf("Q3 rows = %d, limit 10", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][3].AsFloat() > rows[i-1][3].AsFloat() {
			t.Fatal("Q3 not ordered by revenue desc")
		}
	}
}

func TestQ4PrioritiesComplete(t *testing.T) {
	d, _ := catalogs(t)
	rows := Q4(d)
	if len(rows) == 0 || len(rows) > 5 {
		t.Fatalf("Q4 groups = %d", len(rows))
	}
	for _, r := range rows {
		if r[1].AsInt() <= 0 {
			t.Fatalf("Q4 non-positive count: %v", r)
		}
	}
}

func TestQ6ManualCheck(t *testing.T) {
	d, _ := catalogs(t)
	lo, hi := tpch.Date(1994, 1, 1), tpch.Date(1995, 1, 1)
	var want float64
	for _, l := range d.Rows(tpch.Lineitem) {
		dte := l[tpch.LShipdate].AsInt()
		disc := l[tpch.LDiscount].AsFloat()
		if dte >= lo && dte < hi && disc >= 0.05-1e-9 && disc <= 0.07+1e-9 &&
			l[tpch.LQuantity].AsFloat() < 24 {
			want += l[tpch.LExtendedprice].AsFloat() * disc
		}
	}
	got := Q6(d)[0][0].AsFloat()
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Q6 = %v, manual = %v", got, want)
	}
}

func TestQ13IncludesZeroOrderCustomers(t *testing.T) {
	d, _ := catalogs(t)
	rows := Q13(d)
	var totalCust int64
	for _, r := range rows {
		totalCust += r[1].AsInt()
	}
	if totalCust != int64(len(d.Rows(tpch.Customer))) {
		t.Fatalf("Q13 covers %d customers, want %d", totalCust, len(d.Rows(tpch.Customer)))
	}
}

func TestQ14PercentBounds(t *testing.T) {
	d, _ := catalogs(t)
	pct := Q14(d)[0][0].AsFloat()
	if pct < 0 || pct > 100 {
		t.Fatalf("Q14 percent = %v", pct)
	}
}

func TestQ15MaxRevenue(t *testing.T) {
	d, _ := catalogs(t)
	rows := Q15(d)
	if len(rows) == 0 {
		t.Skip("no Q1-1996 revenue at this scale")
	}
	rev := rows[0][4].AsFloat()
	for _, r := range rows {
		if r[4].AsFloat() != rev {
			t.Fatal("Q15 returned suppliers with non-maximal revenue")
		}
	}
}

func TestQ18ThresholdRespected(t *testing.T) {
	d, _ := catalogs(t)
	for _, r := range Q18(d) {
		if r[5].AsFloat() <= 300 {
			t.Fatalf("Q18 included order with qty %v", r[5])
		}
	}
}

func TestQ22OnlyInactiveCustomers(t *testing.T) {
	d, _ := catalogs(t)
	// Customers counted must have no orders: total counted ≤ customers
	// without orders.
	hasOrder := map[int64]bool{}
	for _, o := range d.Rows(tpch.Orders) {
		hasOrder[o[tpch.OCustkey].AsInt()] = true
	}
	inactive := 0
	for _, c := range d.Rows(tpch.Customer) {
		if !hasOrder[c[tpch.CCustkey].AsInt()] {
			inactive++
		}
	}
	var counted int64
	for _, r := range Q22(d) {
		counted += r[1].AsInt()
	}
	if counted > int64(inactive) {
		t.Fatalf("Q22 counted %d, only %d inactive customers exist", counted, inactive)
	}
}

func TestYearHelper(t *testing.T) {
	cases := []struct {
		y, m, d int
		want    int64
	}{
		{1970, 1, 1, 1970}, {1992, 12, 31, 1992}, {1996, 2, 29, 1996},
		{1998, 1, 1, 1998}, {2000, 6, 15, 2000},
	}
	for _, c := range cases {
		if got := year(tpch.Date(c.y, c.m, c.d)); got != c.want {
			t.Errorf("year(%d-%d-%d) = %d", c.y, c.m, c.d, got)
		}
	}
}

func TestQ2MinCostOnly(t *testing.T) {
	d, _ := catalogs(t)
	rows := Q2(d)
	if len(rows) > 100 {
		t.Fatalf("Q2 rows = %d, limit 100", len(rows))
	}
	// Ordered by acctbal desc first.
	for i := 1; i < len(rows); i++ {
		if rows[i][0].AsFloat() > rows[i-1][0].AsFloat() {
			t.Fatal("Q2 not ordered by s_acctbal desc")
		}
	}
}

func TestQ5RevenuePositive(t *testing.T) {
	d, _ := catalogs(t)
	for _, r := range Q5(d) {
		if r[1].AsFloat() <= 0 {
			t.Fatalf("Q5 non-positive revenue: %v", r)
		}
	}
}

func TestQ7OnlyFranceGermany(t *testing.T) {
	d, _ := catalogs(t)
	for _, r := range Q7(d) {
		s, c := r[0].AsString(), r[1].AsString()
		if !((s == "FRANCE" && c == "GERMANY") || (s == "GERMANY" && c == "FRANCE")) {
			t.Fatalf("Q7 pair %s/%s", s, c)
		}
		if y := r[2].AsInt(); y != 1995 && y != 1996 {
			t.Fatalf("Q7 year %d", y)
		}
	}
}

func TestQ8ShareBounds(t *testing.T) {
	d, _ := catalogs(t)
	for _, r := range Q8(d) {
		if s := r[1].AsFloat(); s < 0 || s > 1 {
			t.Fatalf("Q8 share %v", s)
		}
	}
}

func TestQ10Limit20(t *testing.T) {
	d, _ := catalogs(t)
	rows := Q10(d)
	if len(rows) > 20 {
		t.Fatalf("Q10 rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][7].AsFloat() > rows[i-1][7].AsFloat() {
			t.Fatal("Q10 not ordered by revenue desc")
		}
	}
}

func TestQ11AboveThreshold(t *testing.T) {
	d, _ := catalogs(t)
	rows := Q11(d)
	// Recompute the threshold and confirm all rows exceed it.
	var total float64
	germanSupp := map[int64]bool{}
	for _, n := range d.Rows(tpch.Nation) {
		if n[tpch.NName].AsString() == "GERMANY" {
			for _, s := range d.Rows(tpch.Supplier) {
				if s[tpch.SNationkey].AsInt() == n[tpch.NNationkey].AsInt() {
					germanSupp[s[tpch.SSuppkey].AsInt()] = true
				}
			}
		}
	}
	for _, ps := range d.Rows(tpch.PartSupp) {
		if germanSupp[ps[tpch.PSSuppkey].AsInt()] {
			total += ps[tpch.PSSupplycost].AsFloat() * float64(ps[tpch.PSAvailqty].AsInt())
		}
	}
	for _, r := range rows {
		if r[1].AsFloat() <= total*0.0001 {
			t.Fatalf("Q11 row below threshold: %v", r)
		}
	}
}

func TestQ12OnlyMailShip(t *testing.T) {
	d, _ := catalogs(t)
	rows := Q12(d)
	if len(rows) > 2 {
		t.Fatalf("Q12 groups = %d", len(rows))
	}
	for _, r := range rows {
		m := r[0].AsString()
		if m != "MAIL" && m != "SHIP" {
			t.Fatalf("Q12 mode %q", m)
		}
	}
}

func TestQ16ExcludesBrand45(t *testing.T) {
	d, _ := catalogs(t)
	for _, r := range Q16(d) {
		if r[0].AsString() == "Brand#45" {
			t.Fatal("Q16 included Brand#45")
		}
		if r[3].AsInt() <= 0 {
			t.Fatalf("Q16 non-positive supplier count: %v", r)
		}
	}
}

func TestQ21OrderedAndBounded(t *testing.T) {
	d, _ := catalogs(t)
	rows := Q21(d)
	if len(rows) > 100 {
		t.Fatalf("Q21 rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i][1].AsInt() > rows[i-1][1].AsInt() {
			t.Fatal("Q21 not ordered by numwait desc")
		}
	}
}
