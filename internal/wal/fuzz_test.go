package wal

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReader hardens log replay against arbitrary file contents: Next
// must terminate (EOF, ErrCorrupt, or a decode error) without panicking,
// and a clean EOF must never fabricate operations beyond the durable
// prefix length.
func FuzzReader(f *testing.F) {
	// Seed with a valid two-record log.
	dir, err := os.MkdirTemp("", "fuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	p := filepath.Join(dir, "seed.wal")
	w, err := Create(p)
	if err != nil {
		f.Fatal(err)
	}
	w.Append(Op{Kind: KindInsert, ID: 1, Data: []byte("hello")})
	w.Append(Op{Kind: KindDelete, ID: 1})
	w.Close()
	seed, _ := os.ReadFile(p)
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "f.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		for i := 0; i < len(data)+2; i++ {
			_, err := r.Next()
			if err == io.EOF || err == ErrCorrupt {
				return
			}
			if err != nil {
				return // decode error: acceptable terminal state
			}
		}
		t.Fatalf("reader produced more records than the input could hold")
	})
}
