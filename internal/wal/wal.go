// Package wal implements a minimal write-ahead log giving the universal
// table crash-safe durability. Each mutating operation (insert, update,
// delete) is appended as one checksummed record; recovery replays the
// log through the partitioner, which is deterministic, so the partition
// layout after recovery matches the layout before the crash.
//
// Record layout (little endian):
//
//	crc32(payload) uint32 | payloadLen uint32 | payload
//	payload: kind byte | id uvarint | data …
//
// A torn tail (partial final record after a crash) is detected by length
// or checksum mismatch and discarded; everything before it is replayed.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"cinderella/internal/obs"
)

// Kind tags an operation in the log.
type Kind byte

// Logged operation kinds.
const (
	// KindInsert carries the record bytes of a new entity.
	KindInsert Kind = 1
	// KindUpdate carries the replacement record bytes for an entity.
	KindUpdate Kind = 2
	// KindDelete carries no data.
	KindDelete Kind = 3
	// KindAttr registers an attribute name (Data) under a dense id (ID),
	// making the log self-describing for dictionary-encoded records.
	KindAttr Kind = 4
	// KindCompact records a partition compaction; ID carries the float64
	// bits of the fill threshold. Compaction is deterministic, so replay
	// reproduces the merged partitioning.
	KindCompact Kind = 5
)

// Op is one logged operation.
type Op struct {
	Kind Kind
	ID   uint64
	Data []byte
}

// ErrCorrupt is returned by Reader.Next for a record that fails its
// checksum mid-log (not at the tail, which is silently truncated).
var ErrCorrupt = errors.New("wal: corrupt record")

// Writer appends operations to a log file. A Writer is not safe for
// concurrent use; callers (DurableTable) serialize access. The seq and
// synced counters are the group-commit bookkeeping: seq numbers every
// appended record, synced remembers the highest record number made
// durable, and a batching committer compares the two to coalesce many
// logical sync requests into one fsync (see Sync).
type Writer struct {
	f      *os.File
	buf    *bufio.Writer
	scr    []byte
	obs    *obs.Registry
	seq    uint64 // records appended so far
	synced uint64 // records covered by the last successful Sync
}

// SetObserver attaches a telemetry registry; appends and syncs then feed
// the WAL counters and latency histograms. nil detaches.
func (w *Writer) SetObserver(r *obs.Registry) { w.obs = r }

// Create opens path for appending (creating it if missing).
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, buf: bufio.NewWriter(f)}, nil
}

// Append writes one operation to the log buffer. Call Sync to make it
// durable.
func (w *Writer) Append(op Op) error {
	var start time.Time
	if w.obs != nil {
		start = time.Now()
	}
	payload := w.scr[:0]
	payload = append(payload, byte(op.Kind))
	payload = binary.AppendUvarint(payload, op.ID)
	payload = append(payload, op.Data...)
	w.scr = payload

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.buf.Write(payload)
	if err == nil {
		w.seq++
		if w.obs != nil {
			w.obs.Add(obs.CWALAppends, 1)
			w.obs.Add(obs.CWALAppendBytes, int64(len(hdr)+len(payload)))
			w.obs.ObserveWALAppendNs(time.Since(start).Nanoseconds())
		}
	}
	return err
}

// Seq returns the number of records appended so far.
func (w *Writer) Seq() uint64 { return w.seq }

// Synced returns the highest record number made durable by Sync: every
// record with number ≤ Synced() has been fsynced. A group committer
// skips the fsync entirely when Synced() already covers the record it
// is acknowledging.
func (w *Writer) Synced() uint64 { return w.synced }

// Flush pushes buffered records to the OS page cache and returns the
// sequence number they cover, without fsyncing. SyncFile and MarkSynced
// complete the durability handshake; the three-step split lets a group
// committer run the fsync outside the table's append lock, so
// concurrent appends overlap the disk wait and pile into the next
// batch. Callers serialize Flush with Append like the other methods.
func (w *Writer) Flush() (uint64, error) {
	seq := w.seq
	if err := w.buf.Flush(); err != nil {
		return 0, err
	}
	return seq, nil
}

// SyncFile fsyncs the underlying file. Unlike the Writer's other
// methods it is safe to call while another goroutine appends: it
// persists at least every record already Flushed (possibly more, which
// is harmless — durability can only run ahead of what is claimed).
func (w *Writer) SyncFile() error {
	var start time.Time
	if w.obs != nil {
		start = time.Now()
	}
	err := w.f.Sync()
	if err == nil && w.obs != nil {
		w.obs.Add(obs.CWALSyncs, 1)
		w.obs.ObserveWALSyncNs(time.Since(start).Nanoseconds())
	}
	return err
}

// MarkSynced records that records numbered ≤ seq are durable, after a
// successful SyncFile. It keeps the maximum, so a slow fsync completing
// late cannot regress Synced. Serialized by the caller like Append.
func (w *Writer) MarkSynced(seq uint64) {
	if seq > w.synced {
		w.synced = seq
	}
}

// Sync flushes buffered records and fsyncs the file, all in one call on
// the caller's goroutine (use Flush/SyncFile/MarkSynced to overlap the
// fsync with appends). Afterwards Synced() == Seq(): every appended
// record is durable, which is what lets one fsync acknowledge a whole
// batch of concurrent writers.
func (w *Writer) Sync() error {
	var start time.Time
	if w.obs != nil {
		start = time.Now()
	}
	seq := w.seq
	if err := w.buf.Flush(); err != nil {
		return err
	}
	err := w.f.Sync()
	if err == nil {
		w.MarkSynced(seq)
		if w.obs != nil {
			w.obs.Add(obs.CWALSyncs, 1)
			w.obs.ObserveWALSyncNs(time.Since(start).Nanoseconds())
		}
	}
	return err
}

// Close flushes, syncs, and closes the log.
func (w *Writer) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Reader iterates a log file from the start.
type Reader struct {
	r    *bufio.Reader
	c    io.Closer
	done bool
}

// Open opens path for replay. A missing file yields an empty reader.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return &Reader{done: true}, nil
	}
	if err != nil {
		return nil, err
	}
	return &Reader{r: bufio.NewReader(f), c: f}, nil
}

// Next returns the next operation, io.EOF at a clean end (including a
// truncated tail, which is treated as the end of the durable prefix), or
// ErrCorrupt for a checksum failure that is followed by more data.
func (r *Reader) Next() (Op, error) {
	if r.done {
		return Op{}, io.EOF
	}
	var hdr [8]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		r.done = true
		return Op{}, io.EOF // clean end or torn header: durable prefix ends here
	}
	crc := binary.LittleEndian.Uint32(hdr[0:4])
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if n > 1<<30 {
		r.done = true
		return Op{}, io.EOF // implausible length: torn tail
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		r.done = true
		return Op{}, io.EOF // torn payload
	}
	if crc32.ChecksumIEEE(payload) != crc {
		// Distinguish a torn tail (nothing follows) from mid-log rot.
		if _, err := r.r.Peek(1); err != nil {
			r.done = true
			return Op{}, io.EOF
		}
		r.done = true
		return Op{}, ErrCorrupt
	}
	if len(payload) < 2 {
		r.done = true
		return Op{}, fmt.Errorf("wal: short payload")
	}
	kind := Kind(payload[0])
	id, k := binary.Uvarint(payload[1:])
	if k <= 0 {
		r.done = true
		return Op{}, fmt.Errorf("wal: corrupt id")
	}
	data := payload[1+k:]
	return Op{Kind: kind, ID: id, Data: data}, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error {
	if r.c != nil {
		return r.c.Close()
	}
	return nil
}

// Rewrite atomically replaces the log at path with exactly ops (used by
// checkpointing: the live data set re-expressed as inserts). It writes
// to a temp file, syncs, and renames over the original.
func Rewrite(path string, ops []Op) error {
	tmp := path + ".tmp"
	w, err := Create(tmp)
	if err != nil {
		return err
	}
	for _, op := range ops {
		if err := w.Append(op); err != nil {
			w.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
