package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func tmpLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "test.wal")
}

func writeOps(t *testing.T, path string, ops []Op) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := w.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readAll(t *testing.T, path string) []Op {
	t.Helper()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []Op
	for {
		op, err := r.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, op)
	}
}

func TestRoundTrip(t *testing.T) {
	path := tmpLog(t)
	ops := []Op{
		{Kind: KindInsert, ID: 1, Data: []byte("hello")},
		{Kind: KindUpdate, ID: 1, Data: []byte("world!")},
		{Kind: KindDelete, ID: 1},
		{Kind: KindInsert, ID: 42, Data: bytes.Repeat([]byte{0xAB}, 10000)},
	}
	writeOps(t, path, ops)
	got := readAll(t, path)
	if len(got) != len(ops) {
		t.Fatalf("read %d ops, want %d", len(got), len(ops))
	}
	for i, op := range ops {
		g := got[i]
		if g.Kind != op.Kind || g.ID != op.ID || !bytes.Equal(g.Data, op.Data) {
			t.Fatalf("op %d: got %+v want %+v", i, g, op)
		}
	}
}

func TestEmptyAndMissing(t *testing.T) {
	path := tmpLog(t)
	if got := readAll(t, path); len(got) != 0 {
		t.Fatalf("missing file yielded %d ops", len(got))
	}
	writeOps(t, path, nil)
	if got := readAll(t, path); len(got) != 0 {
		t.Fatalf("empty file yielded %d ops", len(got))
	}
}

func TestAppendAcrossSessions(t *testing.T) {
	path := tmpLog(t)
	writeOps(t, path, []Op{{Kind: KindInsert, ID: 1, Data: []byte("a")}})
	writeOps(t, path, []Op{{Kind: KindInsert, ID: 2, Data: []byte("b")}})
	got := readAll(t, path)
	if len(got) != 2 || got[1].ID != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	path := tmpLog(t)
	writeOps(t, path, []Op{
		{Kind: KindInsert, ID: 1, Data: []byte("keep me")},
		{Kind: KindInsert, ID: 2, Data: []byte("torn")},
	})
	// Chop bytes off the end, simulating a crash mid-write.
	raw, _ := os.ReadFile(path)
	for cut := 1; cut < 12; cut++ {
		if err := os.WriteFile(path, raw[:len(raw)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := readAll(t, path)
		if len(got) != 1 || got[0].ID != 1 {
			t.Fatalf("cut %d: got %+v, want the first op only", cut, got)
		}
	}
}

func TestMidLogCorruptionReported(t *testing.T) {
	path := tmpLog(t)
	writeOps(t, path, []Op{
		{Kind: KindInsert, ID: 1, Data: []byte("first")},
		{Kind: KindInsert, ID: 2, Data: []byte("second")},
	})
	raw, _ := os.ReadFile(path)
	// Flip a data byte inside the FIRST record (not the tail).
	raw[10] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err != ErrCorrupt {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestImplausibleLengthTreatedAsTorn(t *testing.T) {
	path := tmpLog(t)
	writeOps(t, path, []Op{{Kind: KindInsert, ID: 1, Data: []byte("x")}})
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{1, 2, 3, 4, 0xFF, 0xFF, 0xFF, 0x7F}) // absurd length
	f.Close()
	got := readAll(t, path)
	if len(got) != 1 {
		t.Fatalf("got %d ops", len(got))
	}
}

func TestRewrite(t *testing.T) {
	path := tmpLog(t)
	writeOps(t, path, []Op{
		{Kind: KindInsert, ID: 1, Data: []byte("a")},
		{Kind: KindDelete, ID: 1},
		{Kind: KindInsert, ID: 2, Data: []byte("b")},
	})
	if err := Rewrite(path, []Op{{Kind: KindInsert, ID: 2, Data: []byte("b")}}); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, path)
	if len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("after rewrite: %+v", got)
	}
	// Temp file cleaned up.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestPropRoundTrip(t *testing.T) {
	f := func(kinds []uint8, ids []uint64, blobs [][]byte) bool {
		if len(kinds) == 0 {
			return true
		}
		dir, err := os.MkdirTemp("", "wal")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "p.wal")
		var ops []Op
		for i, k := range kinds {
			op := Op{Kind: Kind(k%3 + 1)}
			if len(ids) > 0 {
				op.ID = ids[i%len(ids)]
			}
			if len(blobs) > 0 {
				op.Data = blobs[i%len(blobs)]
			}
			ops = append(ops, op)
		}
		w, err := Create(path)
		if err != nil {
			return false
		}
		for _, op := range ops {
			if w.Append(op) != nil {
				return false
			}
		}
		if w.Close() != nil {
			return false
		}
		r, err := Open(path)
		if err != nil {
			return false
		}
		defer r.Close()
		for _, want := range ops {
			got, err := r.Next()
			if err != nil || got.Kind != want.Kind || got.ID != want.ID ||
				!bytes.Equal(got.Data, want.Data) {
				return false
			}
		}
		_, err = r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.wal")
	w, err := Create(path)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	data := bytes.Repeat([]byte{1}, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.Append(Op{Kind: KindInsert, ID: uint64(i), Data: data}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCreateInMissingDirFails(t *testing.T) {
	if _, err := Create(filepath.Join(t.TempDir(), "no", "such", "dir", "x.wal")); err == nil {
		t.Fatal("Create in missing directory succeeded")
	}
}

func TestOpenUnreadableFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.wal")
	writeOps(t, path, []Op{{Kind: KindInsert, ID: 1}})
	if err := os.Chmod(path, 0); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(path, 0o644)
	if _, err := Open(path); err == nil {
		t.Skip("running as root: permissions not enforced")
	}
}

func TestShortPayloadRejected(t *testing.T) {
	path := tmpLog(t)
	// Hand-craft a record with a 1-byte payload (kind only, no id).
	payload := []byte{byte(KindInsert)}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	if err := os.WriteFile(path, append(append([]byte{}, hdr[:]...), payload...), 0o644); err != nil {
		t.Fatal(err)
	}
	// Append a second valid-looking record so the corrupt one is not a
	// silent tail.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write(hdr[:])
	f.Write(payload)
	f.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestRewriteToMissingDirFails(t *testing.T) {
	if err := Rewrite(filepath.Join(t.TempDir(), "no", "dir", "x.wal"), nil); err == nil {
		t.Fatal("Rewrite into missing directory succeeded")
	}
}

func TestWriterSeqSynced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Seq() != 0 || w.Synced() != 0 {
		t.Fatalf("fresh writer: seq=%d synced=%d, want 0,0", w.Seq(), w.Synced())
	}
	for i := 1; i <= 5; i++ {
		if err := w.Append(Op{Kind: KindInsert, ID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		if w.Seq() != uint64(i) {
			t.Fatalf("after %d appends: seq=%d", i, w.Seq())
		}
	}
	if w.Synced() != 0 {
		t.Fatalf("synced=%d before Sync, want 0", w.Synced())
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.Synced() != 5 {
		t.Fatalf("synced=%d after Sync, want 5", w.Synced())
	}
	if err := w.Append(Op{Kind: KindDelete, ID: 9}); err != nil {
		t.Fatal(err)
	}
	if w.Seq() != 6 || w.Synced() != 5 {
		t.Fatalf("seq=%d synced=%d, want 6,5", w.Seq(), w.Synced())
	}
}
