package wire_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"cinderella/internal/entity"
	"cinderella/internal/wire"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame parser. The
// contract under attack: every malformed input yields a typed
// ProtocolError (never a panic), clean stream ends yield io.EOF, and a
// hostile length prefix never makes the parser allocate past the frame
// limit.
func FuzzReadFrame(f *testing.F) {
	const maxFrame = 1 << 16

	// Valid single frame.
	f.Add(wire.AppendFrame(nil, wire.OpPing, 1, nil))
	// Valid frame followed by garbage.
	f.Add(append(wire.AppendFrame(nil, wire.OpBatch, 2, []byte("payload")), 0xde, 0xad, 0xbe, 0xef))
	// Truncated: header promises more than the stream has.
	f.Add(append(binary.LittleEndian.AppendUint32(nil, 500), 1, 2, 3))
	// Oversized length prefix.
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xffffffff))
	// Length below the header floor.
	f.Add(binary.LittleEndian.AppendUint32(nil, 2))
	// Short length prefix.
	f.Add([]byte{0x01})
	// Two valid frames back to back.
	two := wire.AppendFrame(nil, wire.OpHello, 1, nil)
	f.Add(wire.AppendFrame(two, wire.OpQuery, 2, []byte{0}))

	f.Fuzz(func(t *testing.T, data []byte) {
		rd := bytes.NewReader(data)
		var buf []byte
		for i := 0; ; i++ {
			if i > len(data) {
				t.Fatalf("parser yielded more frames than input bytes (%d)", len(data))
			}
			frame, err := wire.ReadFrame(rd, &buf, maxFrame)
			if err == nil {
				if len(frame.Payload) > maxFrame {
					t.Fatalf("payload %d exceeds frame limit", len(frame.Payload))
				}
				continue
			}
			if err == io.EOF {
				break // clean end of stream
			}
			var pe wire.ProtocolError
			if !errors.As(err, &pe) {
				t.Fatalf("non-typed parse error %T: %v", err, err)
			}
			break // malformed: the server closes the connection here
		}
		if cap(buf) > maxFrame {
			t.Fatalf("read buffer grew to %d, past the %d frame limit", cap(buf), maxFrame)
		}
	})
}

// FuzzBatchPayloadDecode drives the batch payload parser (op framing +
// entity decode) with arbitrary payloads: it must reject garbage with
// an error, never panic, and never claim to have consumed more bytes
// than exist.
func FuzzBatchPayloadDecode(f *testing.F) {
	e := &entity.Entity{}
	e.Set(1, entity.Int(7))
	e.Set(4, entity.Str("s"))
	good := binary.AppendUvarint(nil, 2)
	good = append(good, wire.BatchInsert)
	good = e.Marshal(good)
	good = append(good, wire.BatchDelete)
	good = binary.AppendUvarint(good, 99)
	f.Add(good)
	f.Add([]byte{0xff})          // corrupt count varint
	f.Add([]byte{5})             // count larger than payload
	f.Add(append(binary.AppendUvarint(nil, 1), 200)) // unknown op kind

	f.Fuzz(func(t *testing.T, p []byte) {
		count, pos, err := wire.ReadUvarint(p, 0)
		if err != nil || count > uint64(len(p)-pos) {
			return // rejected up front, as the server does
		}
		var scratch entity.Entity
		for i := uint64(0); i < count; i++ {
			if pos >= len(p) {
				return
			}
			kind := p[pos]
			pos++
			switch kind {
			case wire.BatchInsert:
				n, err := entity.UnmarshalInto(&scratch, p[pos:])
				if err != nil {
					return
				}
				if n < 0 || n > len(p)-pos {
					t.Fatalf("entity decode consumed %d of %d bytes", n, len(p)-pos)
				}
				pos += n
			case wire.BatchUpdate:
				if _, pos, err = wire.ReadUvarint(p, pos); err != nil {
					return
				}
				n, err := entity.UnmarshalInto(&scratch, p[pos:])
				if err != nil {
					return
				}
				if n < 0 || n > len(p)-pos {
					t.Fatalf("entity decode consumed %d of %d bytes", n, len(p)-pos)
				}
				pos += n
			case wire.BatchDelete:
				if _, pos, err = wire.ReadUvarint(p, pos); err != nil {
					return
				}
			default:
				return
			}
		}
	})
}
