package wire

import (
	"bufio"
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"cinderella"
	"cinderella/internal/entity"
	"cinderella/internal/obs"
)

// Store is the entity-level storage contract the wire server serves:
// satisfied by *cinderella.DurableTable (whose wire dictionary is the
// table dictionary itself) and *shard.Sharded (which translates between
// its process-scoped wire dictionary and the per-shard dictionaries).
type Store interface {
	Dict() *entity.Dictionary
	InsertEntity(*entity.Entity) (cinderella.ID, error)
	UpdateEntity(cinderella.ID, *entity.Entity) (bool, error)
	Delete(cinderella.ID) (bool, error)
	GetEntity(cinderella.ID) (*entity.Entity, bool)
	QueryEntities(...string) []cinderella.EntityRecord
	QueryEntitiesTraced(...string) ([]cinderella.EntityRecord, *obs.QuerySpan)
	LastLSN() uint64
	SyncTo(uint64) error
}

// Acker is the durability ack: the group committer's Commit method.
// The daemon passes the same committer the HTTP server uses, so one
// fsync covers write batches arriving over both protocols. A nil Acker
// falls back to direct SyncTo (per-batch fsync).
type Acker interface {
	Commit(ctx context.Context, lsn uint64) error
}

// Config parameterizes a wire Server. The zero value picks defaults.
type Config struct {
	// MaxFrameBytes bounds one request frame. Default DefaultMaxFrame.
	MaxFrameBytes int
	// Obs receives wire counters, the batch-size histogram, and the
	// open-connections gauge. Nil disables telemetry.
	Obs *obs.Registry
}

// Server serves a Store over the binary wire protocol. Create with
// New, run with Serve, stop with BeginDrain + Shutdown.
type Server struct {
	st    Store
	ack   Acker
	cfg   Config
	obs   *obs.Registry
	token uint64

	draining atomic.Bool

	mu     sync.Mutex
	closed bool
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// New builds a wire Server around st. ack may be nil (direct fsync per
// batch); the daemon passes the HTTP server's group committer so both
// protocols share commit batches.
func New(st Store, ack Acker, cfg Config) *Server {
	if cfg.MaxFrameBytes <= 0 {
		cfg.MaxFrameBytes = DefaultMaxFrame
	}
	var tok [8]byte
	if _, err := cryptorand.Read(tok[:]); err != nil {
		panic(fmt.Sprintf("wire: reading random session token: %v", err))
	}
	return &Server{
		st:    st,
		ack:   ack,
		cfg:   cfg,
		obs:   cfg.Obs,
		token: binary.LittleEndian.Uint64(tok[:]),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// Token returns the session token OpHello reports.
func (s *Server) Token() uint64 { return s.token }

// Serve accepts connections on ln until Shutdown closes it. Each
// connection runs its own frame loop; writes across connections batch
// in the shared committer.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server is shut down")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.obs.AddWireConns(1)
		go s.serveConn(nc)
	}
}

// BeginDrain flips the server into drain mode: batch (write) frames are
// answered with StatusRetry — nothing applied, safe to retry elsewhere —
// while reads, pings, and attribute registration keep being served until
// Shutdown closes the connections. Idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Shutdown drains the server: closes the listeners, waits for the
// connection loops to finish, and force-closes remaining connections
// when ctx ends. Connections whose clients keep them open never finish
// on their own, so callers pass a ctx with a deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// conn is the per-connection state: pooled buffers so a steady-state
// request decode allocates nothing, and the dictionary high-water mark
// for delta encoding.
type conn struct {
	nc       net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	frameBuf []byte         // frame read buffer, reused across frames
	out      []byte         // response build buffer, reused across frames
	scratch  entity.Entity  // decoded-op scratch; stores never retain it
	names    []string       // query attr-name scratch
	dictSent int            // wire dictionary prefix already sent to this client
	bytesOut int64          // flushed response bytes (counted at flush)
}

// serveConn runs one connection's frame loop. Frame-level malformation
// (garbage length, truncation, unknown opcode, version mismatch) closes
// the connection with a ProtocolError after a best-effort error frame;
// payload-level failures are answered in-band and the connection lives.
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	c := &conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 64<<10),
		bw: bufio.NewWriterSize(nc, 64<<10),
	}
	defer func() {
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		s.obs.AddWireConns(-1)
	}()

	for {
		f, err := ReadFrame(c.br, &c.frameBuf, s.cfg.MaxFrameBytes)
		if err != nil {
			if err != io.EOF {
				// Malformed framing: the stream position is lost, so no
				// response can be matched to a request — close.
				s.obs.Add(obs.CWireErrors, 1)
			}
			return
		}
		s.obs.Add(obs.CWireFrames, 1)
		s.obs.Add(obs.CBytesInWire, int64(4+headerLen+len(f.Payload)))

		c.out = c.out[:0]
		fatal := s.handleFrame(c, f)
		if _, err := c.bw.Write(c.out); err != nil {
			return
		}
		c.bytesOut += int64(len(c.out))
		// Flush when no more requests are already buffered — pipelined
		// clients get one flush per burst, single-shot clients get one
		// per frame.
		if c.br.Buffered() == 0 || fatal {
			if err := c.bw.Flush(); err != nil {
				return
			}
			s.obs.Add(obs.CBytesOutWire, c.bytesOut)
			c.bytesOut = 0
		}
		if fatal {
			return
		}
	}
}

// respondError truncates any partial response for this frame and
// appends an error frame with the given status.
func (c *conn) respondError(off int, status byte, seq uint64, msg string) {
	c.out = c.out[:off]
	fo := len(c.out)
	c.out = BeginFrame(c.out, status, seq)
	c.out = AppendErrorPayload(c.out, msg)
	c.out = EndFrame(c.out, fo)
}

// handleFrame dispatches one request frame, appending the response to
// c.out. It returns true when the connection must close (contract
// breach: version mismatch or unknown opcode).
func (s *Server) handleFrame(c *conn, f Frame) (fatal bool) {
	if f.Version != Version {
		s.obs.Add(obs.CWireErrors, 1)
		c.respondError(len(c.out), StatusError, f.Seq,
			fmt.Sprintf("unsupported protocol version %d (server speaks %d)", f.Version, Version))
		return true
	}
	switch f.Kind {
	case OpHello:
		off := len(c.out)
		c.out = BeginFrame(c.out, StatusOK, f.Seq)
		c.out = AppendHello(c.out, s.token)
		c.out = EndFrame(c.out, off)
	case OpPing:
		off := len(c.out)
		c.out = BeginFrame(c.out, StatusOK, f.Seq)
		c.out = EndFrame(c.out, off)
	case OpAttrs:
		s.handleAttrs(c, f)
	case OpBatch:
		s.handleBatch(c, f)
	case OpGet:
		s.handleGet(c, f)
	case OpQuery:
		s.handleQuery(c, f)
	default:
		s.obs.Add(obs.CWireErrors, 1)
		c.respondError(len(c.out), StatusError, f.Seq, fmt.Sprintf("unknown opcode %d", f.Kind))
		return true
	}
	return false
}

// handleAttrs registers attribute names in the wire dictionary and
// returns their ids in request order. Registration is allowed during
// drain: it mutates only the in-memory dictionary (persisted lazily
// with the next mutation), and read-side clients need it.
func (s *Server) handleAttrs(c *conn, f Frame) {
	names, err := DecodeAttrsRequest(f.Payload)
	if err != nil {
		s.obs.Add(obs.CWireErrors, 1)
		c.respondError(len(c.out), StatusError, f.Seq, err.Error())
		return
	}
	dict := s.st.Dict()
	off := len(c.out)
	c.out = BeginFrame(c.out, StatusOK, f.Seq)
	c.out = binary.AppendUvarint(c.out, uint64(len(names)))
	for _, n := range names {
		c.out = binary.AppendUvarint(c.out, uint64(dict.ID(n)))
	}
	c.out = EndFrame(c.out, off)
}

// handleBatch applies a batch of write ops in order and acks their
// durability with one group commit. See the package comment for the
// partial-failure contract.
func (s *Server) handleBatch(c *conn, f Frame) {
	off := len(c.out)
	if s.draining.Load() {
		s.obs.Add(obs.CWireRejected, 1)
		c.respondError(off, StatusRetry, f.Seq, "draining")
		return
	}
	p := f.Payload
	count64, pos, err := ReadUvarint(p, 0)
	if err != nil || count64 > uint64(len(p)-pos) {
		s.obs.Add(obs.CWireErrors, 1)
		c.respondError(off, StatusError, f.Seq, "corrupt batch header")
		return
	}
	count := int(count64)

	c.out = BeginFrame(c.out, StatusOK, f.Seq)
	c.out = binary.AppendUvarint(c.out, uint64(count))

	applied := 0
	for i := 0; i < count; i++ {
		var failMsg string
		if pos >= len(p) {
			failMsg = "batch shorter than its op count"
		} else {
			kind := p[pos]
			pos++
			switch kind {
			case BatchInsert:
				n, err := entity.UnmarshalInto(&c.scratch, p[pos:])
				if err != nil {
					failMsg = err.Error()
					break
				}
				pos += n
				id, err := s.st.InsertEntity(&c.scratch)
				if err != nil {
					failMsg = err.Error()
					break
				}
				c.out = append(c.out, ResOK)
				c.out = binary.AppendUvarint(c.out, uint64(id))
				applied++
			case BatchUpdate:
				id, npos, err := ReadUvarint(p, pos)
				if err != nil {
					failMsg = err.Error()
					break
				}
				pos = npos
				n, err := entity.UnmarshalInto(&c.scratch, p[pos:])
				if err != nil {
					failMsg = err.Error()
					break
				}
				pos += n
				found, err := s.st.UpdateEntity(cinderella.ID(id), &c.scratch)
				if err != nil {
					failMsg = err.Error()
					break
				}
				if found {
					c.out = append(c.out, ResOK)
					applied++
				} else {
					c.out = append(c.out, ResNotFound)
				}
			case BatchDelete:
				id, npos, err := ReadUvarint(p, pos)
				if err != nil {
					failMsg = err.Error()
					break
				}
				pos = npos
				found, err := s.st.Delete(cinderella.ID(id))
				if err != nil {
					failMsg = err.Error()
					break
				}
				if found {
					c.out = append(c.out, ResOK)
					applied++
				} else {
					c.out = append(c.out, ResNotFound)
				}
			default:
				failMsg = fmt.Sprintf("unknown batch op kind %d", kind)
			}
		}
		if failMsg != "" {
			// This op failed; the rest of the payload cannot be parsed
			// reliably (ops are self-delimiting only when well-formed),
			// so every remaining op is unapplied. The applied prefix is
			// still committed and acked below.
			s.obs.Add(obs.CWireErrors, 1)
			c.out = append(c.out, ResFailed)
			c.out = AppendString(c.out, failMsg)
			for j := i + 1; j < count; j++ {
				c.out = append(c.out, ResUnapplied)
			}
			break
		}
	}
	s.obs.Add(obs.CWireOps, int64(applied))
	s.obs.ObserveWireBatch(int64(count))

	if applied > 0 {
		if err := s.commit(); err != nil {
			// The prefix was applied but cannot be acked durable. Not
			// retryable: re-sending could double-apply inserts.
			s.obs.Add(obs.CWireErrors, 1)
			c.respondError(off, StatusNotDurable, f.Seq, "applied but not durable: "+err.Error())
			return
		}
	}
	c.out = EndFrame(c.out, off)
}

// commit makes everything this connection has applied durable: one
// group-commit wait (shared with the HTTP path) or a direct SyncTo.
func (s *Server) commit() error {
	lsn := s.st.LastLSN()
	if s.ack == nil {
		return s.st.SyncTo(lsn)
	}
	return s.ack.Commit(context.Background(), lsn)
}

// appendDictDelta appends the (id → name) pairs the client has not seen
// yet and advances the high-water mark. Must run after the store call
// that produced the response's entities, so every id they reference is
// covered.
func (s *Server) appendDictDelta(c *conn) {
	dict := s.st.Dict()
	cur := dict.Len()
	c.out = binary.AppendUvarint(c.out, uint64(c.dictSent))
	c.out = binary.AppendUvarint(c.out, uint64(cur-c.dictSent))
	for i := c.dictSent; i < cur; i++ {
		c.out = AppendString(c.out, dict.Name(i))
	}
	c.dictSent = cur
}

// handleGet answers OpGet: dictionary delta, found byte, entity.
func (s *Server) handleGet(c *conn, f Frame) {
	id, pos, err := ReadUvarint(f.Payload, 0)
	if err != nil || pos != len(f.Payload) {
		s.obs.Add(obs.CWireErrors, 1)
		c.respondError(len(c.out), StatusError, f.Seq, "corrupt get payload")
		return
	}
	e, ok := s.st.GetEntity(cinderella.ID(id))
	off := len(c.out)
	c.out = BeginFrame(c.out, StatusOK, f.Seq)
	s.appendDictDelta(c)
	if ok {
		c.out = append(c.out, 1)
		c.out = e.Marshal(c.out)
	} else {
		c.out = append(c.out, 0)
	}
	c.out = EndFrame(c.out, off)
}

// handleQuery answers OpQuery: dictionary delta, record count, then
// (id, entity) pairs. Query attributes are wire dictionary ids the
// client registered via OpAttrs; unknown ids are a client error. An
// optional trailing flags byte may request an inline trace
// (QueryFlagTrace): the response then additionally carries the span
// tree as length-prefixed JSON after the records.
func (s *Server) handleQuery(c *conn, f Frame) {
	p := f.Payload
	n, pos, err := ReadUvarint(p, 0)
	if err != nil || n > uint64(len(p)-pos) {
		s.obs.Add(obs.CWireErrors, 1)
		c.respondError(len(c.out), StatusError, f.Seq, "corrupt query payload")
		return
	}
	dict := s.st.Dict()
	dictLen := dict.Len()
	c.names = c.names[:0]
	for i := uint64(0); i < n; i++ {
		var id uint64
		if id, pos, err = ReadUvarint(p, pos); err != nil {
			s.obs.Add(obs.CWireErrors, 1)
			c.respondError(len(c.out), StatusError, f.Seq, "corrupt query payload")
			return
		}
		if id >= uint64(dictLen) {
			s.obs.Add(obs.CWireErrors, 1)
			c.respondError(len(c.out), StatusError, f.Seq,
				fmt.Sprintf("unregistered attribute id %d in query", id))
			return
		}
		c.names = append(c.names, dict.Name(int(id)))
	}
	var flags byte
	if pos < len(p) {
		flags = p[pos]
	}

	var recs []cinderella.EntityRecord
	var traceJSON []byte
	if flags&QueryFlagTrace != 0 {
		var sp *obs.QuerySpan
		recs, sp = s.st.QueryEntitiesTraced(c.names...)
		if sp != nil {
			if traceJSON, err = json.Marshal(sp); err != nil {
				traceJSON = nil
			}
		}
	} else {
		recs = s.st.QueryEntities(c.names...)
	}

	off := len(c.out)
	c.out = BeginFrame(c.out, StatusOK, f.Seq)
	s.appendDictDelta(c)
	c.out = binary.AppendUvarint(c.out, uint64(len(recs)))
	for _, r := range recs {
		c.out = binary.AppendUvarint(c.out, uint64(r.ID))
		c.out = r.Entity.Marshal(c.out)
	}
	if flags&QueryFlagTrace != 0 {
		c.out = AppendString(c.out, string(traceJSON))
	}
	c.out = EndFrame(c.out, off)
}
