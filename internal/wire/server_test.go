package wire_test

import (
	"context"
	"encoding/binary"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cinderella"
	"cinderella/internal/entity"
	"cinderella/internal/shard"
	"cinderella/internal/wire"
)

// startServer runs a wire server over st on an ephemeral port and
// returns its address. Cleanup shuts it down.
func startServer(t *testing.T, st wire.Store) (string, *wire.Server) {
	t.Helper()
	srv := wire.New(st, nil, wire.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String(), srv
}

// rawConn is a hand-driven protocol client for exercising the server
// below the client package's conveniences.
type rawConn struct {
	t   *testing.T
	nc  net.Conn
	buf []byte
	seq uint64
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{t: t, nc: nc}
}

func (r *rawConn) send(kind byte, payload []byte) uint64 {
	r.t.Helper()
	r.seq++
	if _, err := r.nc.Write(wire.AppendFrame(nil, kind, r.seq, payload)); err != nil {
		r.t.Fatal(err)
	}
	return r.seq
}

// sendVersion sends a frame with an arbitrary version byte.
func (r *rawConn) sendVersion(version, kind byte, payload []byte) {
	r.t.Helper()
	r.seq++
	frame := wire.AppendFrame(nil, kind, r.seq, payload)
	frame[4] = version
	if _, err := r.nc.Write(frame); err != nil {
		r.t.Fatal(err)
	}
}

// recv reads one response frame; the payload is copied.
func (r *rawConn) recv() wire.Frame {
	r.t.Helper()
	r.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := wire.ReadFrame(r.nc, &r.buf, wire.DefaultMaxFrame)
	if err != nil {
		r.t.Fatal(err)
	}
	f.Payload = append([]byte(nil), f.Payload...)
	return f
}

// expectClosed asserts the server closed the connection.
func (r *rawConn) expectClosed() {
	r.t.Helper()
	r.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if f, err := wire.ReadFrame(r.nc, &r.buf, wire.DefaultMaxFrame); err == nil {
		r.t.Fatalf("connection still open, read frame kind=%d", f.Kind)
	}
}

// registerAttrs round-trips OpAttrs and returns the assigned wire ids.
func (r *rawConn) registerAttrs(names ...string) []int {
	r.t.Helper()
	seq := r.send(wire.OpAttrs, wire.AppendAttrsRequest(nil, names))
	f := r.recv()
	if f.Kind != wire.StatusOK || f.Seq != seq {
		r.t.Fatalf("attrs response kind=%d seq=%d: %s", f.Kind, f.Seq, wire.DecodeErrorPayload(f.Payload))
	}
	ids, err := wire.DecodeAttrsResponse(f.Payload)
	if err != nil {
		r.t.Fatal(err)
	}
	return ids
}

// numEnt builds an entity of int attributes over the given wire ids.
func numEnt(vals map[int]int64) *entity.Entity {
	e := &entity.Entity{}
	for id, v := range vals {
		e.Set(id, entity.Int(v))
	}
	return e
}

// batchInsert encodes one batch frame of inserts.
func batchInsert(ents ...*entity.Entity) []byte {
	p := binary.AppendUvarint(nil, uint64(len(ents)))
	for _, e := range ents {
		p = append(p, wire.BatchInsert)
		p = e.Marshal(p)
	}
	return p
}

// parseBatchResults decodes per-op result codes (and insert ids).
func parseBatchResults(t *testing.T, p []byte) (codes []byte, ids []uint64, msgs []string) {
	t.Helper()
	n, off, err := wire.ReadUvarint(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < n; i++ {
		code := p[off]
		off++
		codes = append(codes, code)
		var id uint64
		var msg string
		switch code {
		case wire.ResOK:
			// Only inserts carry an id; this helper is used on all-insert
			// batches plus update/delete batches where the caller ignores ids.
			if id, off, err = wire.ReadUvarint(p, off); err != nil {
				t.Fatal(err)
			}
		case wire.ResFailed:
			if msg, off, err = wire.ReadString(p, off); err != nil {
				t.Fatal(err)
			}
		}
		ids = append(ids, id)
		msgs = append(msgs, msg)
	}
	return
}

func openTable(t *testing.T) *cinderella.DurableTable {
	t.Helper()
	d, err := cinderella.OpenFile(filepath.Join(t.TempDir(), "t.wal"),
		cinderella.Config{Weight: 0.3, PartitionSizeLimit: 100})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestServerHelloPingAttrs(t *testing.T) {
	addr, srv := startServer(t, openTable(t))
	c := dialRaw(t, addr)

	seq := c.send(wire.OpHello, nil)
	f := c.recv()
	if f.Kind != wire.StatusOK || f.Seq != seq {
		t.Fatalf("hello: kind=%d", f.Kind)
	}
	tok, err := wire.DecodeHello(f.Payload)
	if err != nil || tok != srv.Token() {
		t.Fatalf("token %x want %x err %v", tok, srv.Token(), err)
	}

	c.send(wire.OpPing, nil)
	if f := c.recv(); f.Kind != wire.StatusOK || len(f.Payload) != 0 {
		t.Fatalf("ping: kind=%d payload=%d", f.Kind, len(f.Payload))
	}

	ids := c.registerAttrs("a", "b", "a")
	if len(ids) != 3 || ids[0] != ids[2] || ids[0] == ids[1] {
		t.Fatalf("attr ids %v: duplicates must resolve to the same id", ids)
	}
}

func TestServerBatchGetQuery(t *testing.T) {
	d := openTable(t)
	addr, _ := startServer(t, d)
	c := dialRaw(t, addr)
	ids := c.registerAttrs("x", "y")

	// Insert two entities in one batch.
	seq := c.send(wire.OpBatch, batchInsert(
		numEnt(map[int]int64{ids[0]: 1}),
		numEnt(map[int]int64{ids[0]: 2, ids[1]: 3}),
	))
	f := c.recv()
	if f.Kind != wire.StatusOK || f.Seq != seq {
		t.Fatalf("batch: kind=%d: %s", f.Kind, wire.DecodeErrorPayload(f.Payload))
	}
	codes, insIDs, _ := parseBatchResults(t, f.Payload)
	if len(codes) != 2 || codes[0] != wire.ResOK || codes[1] != wire.ResOK {
		t.Fatalf("codes %v", codes)
	}
	if insIDs[0] == 0 || insIDs[1] == 0 {
		t.Fatalf("insert ids %v", insIDs)
	}
	// Writes acked OK must be durable.
	if d.DurableLSN() < d.LastLSN() {
		t.Fatalf("acked batch not durable: durable=%d last=%d", d.DurableLSN(), d.LastLSN())
	}

	// Get the second entity: expect a dict delta naming x and y.
	c.send(wire.OpGet, binary.AppendUvarint(nil, insIDs[1]))
	f = c.recv()
	if f.Kind != wire.StatusOK {
		t.Fatalf("get: %s", wire.DecodeErrorPayload(f.Payload))
	}
	names := map[int]string{}
	off, err := wire.DecodeDictDelta(f.Payload, 0, func(id int, name string) { names[id] = name })
	if err != nil {
		t.Fatal(err)
	}
	if names[ids[0]] != "x" || names[ids[1]] != "y" {
		t.Fatalf("dict delta %v", names)
	}
	if f.Payload[off] != 1 {
		t.Fatal("get: found byte is 0")
	}
	e, _, err := entity.Unmarshal(f.Payload[off+1:])
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Get(ids[1]); !ok || v.AsInt() != 3 {
		t.Fatalf("entity %v", e)
	}

	// Second get on the same conn: the delta must be empty (already sent).
	c.send(wire.OpGet, binary.AppendUvarint(nil, insIDs[0]))
	f = c.recv()
	var deltaCount int
	if _, err := wire.DecodeDictDelta(f.Payload, 0, func(int, string) { deltaCount++ }); err != nil {
		t.Fatal(err)
	}
	if deltaCount != 0 {
		t.Fatalf("second get resent %d dict entries", deltaCount)
	}

	// Query on y matches only the second entity.
	q := binary.AppendUvarint(nil, 1)
	q = binary.AppendUvarint(q, uint64(ids[1]))
	c.send(wire.OpQuery, q)
	f = c.recv()
	if f.Kind != wire.StatusOK {
		t.Fatalf("query: %s", wire.DecodeErrorPayload(f.Payload))
	}
	off, _ = wire.DecodeDictDelta(f.Payload, 0, func(int, string) {})
	n, off, err := wire.ReadUvarint(f.Payload, off)
	if err != nil || n != 1 {
		t.Fatalf("query count %d err %v", n, err)
	}
	gotID, off, _ := wire.ReadUvarint(f.Payload, off)
	if gotID != insIDs[1] {
		t.Fatalf("query returned id %d, want %d", gotID, insIDs[1])
	}
	if _, _, err := entity.Unmarshal(f.Payload[off:]); err != nil {
		t.Fatal(err)
	}

	// Unregistered attribute id in a query is a client error.
	q = binary.AppendUvarint(nil, 1)
	q = binary.AppendUvarint(q, 9999)
	c.send(wire.OpQuery, q)
	if f = c.recv(); f.Kind != wire.StatusError {
		t.Fatalf("unregistered query id: kind=%d", f.Kind)
	}
	// ... and the connection survives it.
	c.send(wire.OpPing, nil)
	if f = c.recv(); f.Kind != wire.StatusOK {
		t.Fatal("connection did not survive a payload-level error")
	}
}

func TestServerBatchPartialFailure(t *testing.T) {
	d := openTable(t)
	addr, _ := startServer(t, d)
	c := dialRaw(t, addr)
	ids := c.registerAttrs("a")

	before := d.Len()
	// Middle op references an unknown attribute id: the store rejects it.
	c.send(wire.OpBatch, batchInsert(
		numEnt(map[int]int64{ids[0]: 1}),
		numEnt(map[int]int64{9999: 2}),
		numEnt(map[int]int64{ids[0]: 3}),
	))
	f := c.recv()
	if f.Kind != wire.StatusOK {
		t.Fatalf("partial failure must still answer OK: %s", wire.DecodeErrorPayload(f.Payload))
	}
	codes, _, msgs := parseBatchResults(t, f.Payload)
	want := []byte{wire.ResOK, wire.ResFailed, wire.ResUnapplied}
	for i, w := range want {
		if codes[i] != w {
			t.Fatalf("op %d code %d, want %d (codes %v)", i, codes[i], w, codes)
		}
	}
	if msgs[1] == "" {
		t.Fatal("failed op carries no message")
	}
	// Only the applied prefix landed, and it is durable.
	if got := d.Len(); got != before+1 {
		t.Fatalf("docs %d, want %d (prefix only)", got, before+1)
	}
	if d.DurableLSN() < d.LastLSN() {
		t.Fatal("applied prefix not durable")
	}
	// The connection survives payload-level failures.
	c.send(wire.OpPing, nil)
	if f = c.recv(); f.Kind != wire.StatusOK {
		t.Fatal("connection closed after partial failure")
	}
}

func TestServerFatalFrames(t *testing.T) {
	addr, _ := startServer(t, openTable(t))

	t.Run("unknown opcode", func(t *testing.T) {
		c := dialRaw(t, addr)
		c.send(99, nil)
		if f := c.recv(); f.Kind != wire.StatusError {
			t.Fatalf("kind=%d", f.Kind)
		}
		c.expectClosed()
	})
	t.Run("version mismatch", func(t *testing.T) {
		c := dialRaw(t, addr)
		c.sendVersion(wire.Version+1, wire.OpPing, nil)
		f := c.recv()
		if f.Kind != wire.StatusError || !strings.Contains(wire.DecodeErrorPayload(f.Payload), "version") {
			t.Fatalf("kind=%d msg=%q", f.Kind, wire.DecodeErrorPayload(f.Payload))
		}
		c.expectClosed()
	})
	t.Run("garbage length prefix", func(t *testing.T) {
		c := dialRaw(t, addr)
		if _, err := c.nc.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
			t.Fatal(err)
		}
		c.expectClosed()
	})
	t.Run("corrupt batch header keeps connection", func(t *testing.T) {
		c := dialRaw(t, addr)
		c.send(wire.OpBatch, []byte{0xff}) // truncated varint
		if f := c.recv(); f.Kind != wire.StatusError {
			t.Fatalf("kind=%d", f.Kind)
		}
		c.send(wire.OpPing, nil)
		if f := c.recv(); f.Kind != wire.StatusOK {
			t.Fatal("connection closed after in-band error")
		}
	})
}

func TestServerDrainRejectsWritesServesReads(t *testing.T) {
	d := openTable(t)
	addr, srv := startServer(t, d)
	c := dialRaw(t, addr)
	ids := c.registerAttrs("a")

	c.send(wire.OpBatch, batchInsert(numEnt(map[int]int64{ids[0]: 1})))
	f := c.recv()
	codes, insIDs, _ := parseBatchResults(t, f.Payload)
	if codes[0] != wire.ResOK {
		t.Fatal("pre-drain insert failed")
	}

	srv.BeginDrain()

	// Writes: StatusRetry — nothing applied, safe to retry elsewhere.
	before := d.Len()
	c.send(wire.OpBatch, batchInsert(numEnt(map[int]int64{ids[0]: 2})))
	if f = c.recv(); f.Kind != wire.StatusRetry {
		t.Fatalf("draining batch: kind=%d", f.Kind)
	}
	if d.Len() != before {
		t.Fatal("draining batch was applied")
	}

	// Reads, pings, and attrs keep working for the whole drain window.
	c.send(wire.OpGet, binary.AppendUvarint(nil, insIDs[0]))
	if f = c.recv(); f.Kind != wire.StatusOK {
		t.Fatal("draining get rejected")
	}
	c.send(wire.OpPing, nil)
	if f = c.recv(); f.Kind != wire.StatusOK {
		t.Fatal("draining ping rejected")
	}
	c.registerAttrs("b")
}

func TestServerAckedWritesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	cfg := cinderella.Config{Weight: 0.3, PartitionSizeLimit: 100}
	d, err := cinderella.OpenFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, srv := startServer(t, d)
	c := dialRaw(t, addr)
	ids := c.registerAttrs("k")

	c.send(wire.OpBatch, batchInsert(
		numEnt(map[int]int64{ids[0]: 10}),
		numEnt(map[int]int64{ids[0]: 20}),
	))
	f := c.recv()
	codes, _, _ := parseBatchResults(t, f.Payload)
	if codes[0] != wire.ResOK || codes[1] != wire.ResOK {
		t.Fatalf("codes %v", codes)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	c.nc.Close()
	srv.Shutdown(ctx)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := cinderella.OpenFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != 2 {
		t.Fatalf("reopened table has %d docs, want 2", got)
	}
}

// TestServerShardedBackend runs the full protocol against a Sharded
// store: the wire dictionary is process-scoped, ids are remapped per
// shard, and clients cannot tell the difference.
func TestServerShardedBackend(t *testing.T) {
	sh, err := shard.Open(t.TempDir(), shard.Options{
		Shards: 3,
		Config: cinderella.Config{Weight: 0.3, PartitionSizeLimit: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sh.Close() })
	addr, _ := startServer(t, sh)
	c := dialRaw(t, addr)
	ids := c.registerAttrs("p", "q")

	var ents []*entity.Entity
	for i := int64(1); i <= 9; i++ {
		ents = append(ents, numEnt(map[int]int64{ids[0]: i, ids[1]: i * 10}))
	}
	c.send(wire.OpBatch, batchInsert(ents...))
	f := c.recv()
	if f.Kind != wire.StatusOK {
		t.Fatalf("batch: %s", wire.DecodeErrorPayload(f.Payload))
	}
	codes, insIDs, _ := parseBatchResults(t, f.Payload)
	for i, code := range codes {
		if code != wire.ResOK {
			t.Fatalf("op %d code %d", i, code)
		}
		// Round-trip each through OpGet: values must come back in the
		// wire id space regardless of which shard holds them.
		c.send(wire.OpGet, binary.AppendUvarint(nil, insIDs[i]))
		g := c.recv()
		if g.Kind != wire.StatusOK {
			t.Fatalf("get %d: %s", insIDs[i], wire.DecodeErrorPayload(g.Payload))
		}
		off, err := wire.DecodeDictDelta(g.Payload, 0, func(int, string) {})
		if err != nil {
			t.Fatal(err)
		}
		if g.Payload[off] != 1 {
			t.Fatalf("id %d not found", insIDs[i])
		}
		e, _, err := entity.Unmarshal(g.Payload[off+1:])
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := e.Get(ids[0]); !ok || v.AsInt() != int64(i+1) {
			t.Fatalf("entity %d came back as %v", i, e)
		}
	}

	// Query across shards: all nine match p.
	q := binary.AppendUvarint(nil, 1)
	q = binary.AppendUvarint(q, uint64(ids[0]))
	c.send(wire.OpQuery, q)
	f = c.recv()
	off, _ := wire.DecodeDictDelta(f.Payload, 0, func(int, string) {})
	n, _, err := wire.ReadUvarint(f.Payload, off)
	if err != nil || n != 9 {
		t.Fatalf("query matched %d, want 9 (err %v)", n, err)
	}
}
