// Package wire is cinderellad's binary protocol: a length-prefixed
// framed request/response codec over persistent TCP connections, built
// directly on the internal/entity record format so documents never
// round-trip through map[string]any on either side.
//
// Frame layout (all integers little-endian):
//
//	len:uint32 | version:byte | kind:byte | seq:uint64 | payload
//
// len counts everything after itself (10 header bytes + payload).
// version is Version (1); a server answers frames of any version it
// does not speak with StatusError and closes — the byte exists so a
// future version can widen the header without breaking old peers. kind
// is an opcode (requests) or a status (responses). seq is echoed
// verbatim so clients can pipeline requests and match responses.
//
// Opcodes:
//
//	OpHello  ()                       → token:uint64
//	OpAttrs  (names)                  → ids (wire attribute registration)
//	OpBatch  (ops)                    → per-op results (see below)
//	OpGet    (id)                     → dictDelta, found, entity
//	OpQuery  (attr ids)               → dictDelta, records
//	OpPing   ()                       → ()
//
// Attribute ids on the wire are ids in the server's wire dictionary,
// negotiated per name via OpAttrs. They are session-scoped: OpHello
// returns a random per-process token, and a token change tells the
// client its cached name→id map is stale (server restarted).
//
// Response statuses and the ack contract: StatusOK on a batch means
// every op with an applied result code was applied AND fsynced (the
// group committer coalesces batches across connections into single
// fsyncs). StatusRetry means nothing was applied — the client may
// retry. StatusError is terminal for the request. StatusNotDurable
// means a prefix was applied but durability is unknown; clients must
// not retry (re-applying could double-apply) and must surface the
// error.
//
// Batch partial failure: ops apply in order; the first hard failure
// stops the batch, marking the failing op ResFailed and every later op
// ResUnapplied. A missing id on update/delete is ResNotFound — a
// normal, applied outcome, not a failure. Clients retry only the
// ResUnapplied suffix.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Version is the protocol version this package speaks.
const Version = 1

// headerLen is the fixed frame header after the length prefix:
// version(1) + kind(1) + seq(8).
const headerLen = 10

// DefaultMaxFrame bounds one frame (header + payload). Large enough for
// multi-thousand-op batches of realistic documents, small enough that a
// hostile length prefix cannot balloon memory.
const DefaultMaxFrame = 4 << 20

// Request opcodes.
const (
	OpHello byte = 1 + iota
	OpAttrs
	OpBatch
	OpGet
	OpQuery
	OpPing
)

// Response statuses.
const (
	StatusOK         byte = 0
	StatusError      byte = 1 // terminal for this request
	StatusRetry      byte = 2 // nothing applied; safe to retry
	StatusNotDurable byte = 3 // applied but durability unknown; not retryable
)

// Batch op kinds.
const (
	BatchInsert byte = 1 + iota
	BatchUpdate
	BatchDelete
)

// OpQuery flag bits. The flags byte trails the attribute-id list; it is
// optional, so pre-flag clients (which simply omit it) keep working.
const (
	// QueryFlagTrace requests an inline query trace: the response
	// carries, after the records, a length-prefixed JSON span tree
	// (empty string when the server is uninstrumented). Tracing bypasses
	// sampling — the span always has full detail.
	QueryFlagTrace byte = 1 << 0
)

// Per-op result codes in a batch response.
const (
	ResOK        byte = 0 // applied; insert carries the new id
	ResNotFound  byte = 1 // update/delete applied as a no-op: id not live
	ResFailed    byte = 2 // this op failed; carries a message
	ResUnapplied byte = 3 // not attempted (an earlier op failed); retryable
)

// ProtocolError is the typed error for malformed or out-of-contract
// frames. Both sides close the connection when they see one.
type ProtocolError string

func (e ProtocolError) Error() string { return "wire: " + string(e) }

func errf(format string, args ...any) ProtocolError {
	return ProtocolError(fmt.Sprintf(format, args...))
}

// Frame is one decoded frame. Payload aliases the read buffer and is
// only valid until the next ReadFrame on the same buffer.
type Frame struct {
	Version byte
	Kind    byte
	Seq     uint64
	Payload []byte
}

// ReadFrame reads one frame from r into *buf (growing it as needed, up
// to max bytes per frame). A clean EOF before any header byte returns
// io.EOF; every malformed input returns a ProtocolError, and a frame
// whose declared length exceeds max fails before any allocation.
func ReadFrame(r io.Reader, buf *[]byte, max int) (Frame, error) {
	var f Frame
	if len(*buf) < 4 {
		*buf = make([]byte, 4096)
	}
	if _, err := io.ReadFull(r, (*buf)[:4]); err != nil {
		if err == io.EOF {
			return f, io.EOF
		}
		return f, errf("short frame header: %v", err)
	}
	n := int(binary.LittleEndian.Uint32((*buf)[:4]))
	if n < headerLen {
		return f, errf("frame length %d below header size", n)
	}
	if n > max {
		return f, errf("frame length %d exceeds limit %d", n, max)
	}
	if len(*buf) < n {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return f, errf("truncated frame: %v", err)
	}
	f.Version = body[0]
	f.Kind = body[1]
	f.Seq = binary.LittleEndian.Uint64(body[2:10])
	f.Payload = body[headerLen:]
	return f, nil
}

// BeginFrame appends a frame header with a zero length prefix and
// returns the extended buffer. Append the payload, then call EndFrame
// with the offset BeginFrame started at (len(dst) before the call).
func BeginFrame(dst []byte, kind byte, seq uint64) []byte {
	dst = append(dst, 0, 0, 0, 0, Version, kind)
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	return dst
}

// EndFrame patches the length prefix of the frame started at off.
func EndFrame(dst []byte, off int) []byte {
	binary.LittleEndian.PutUint32(dst[off:], uint32(len(dst)-off-4))
	return dst
}

// AppendFrame appends a complete frame with the given payload.
func AppendFrame(dst []byte, kind byte, seq uint64, payload []byte) []byte {
	off := len(dst)
	dst = BeginFrame(dst, kind, seq)
	dst = append(dst, payload...)
	return EndFrame(dst, off)
}

// ---- payload primitives ----

// AppendString appends a uvarint-length-prefixed string.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// ReadUvarint decodes a uvarint at src[off:], returning the value and
// the new offset.
func ReadUvarint(src []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(src[off:])
	if n <= 0 {
		return 0, 0, errf("corrupt varint at offset %d", off)
	}
	return v, off + n, nil
}

// ReadString decodes a length-prefixed string at src[off:]. The string
// is copied (one allocation), never aliasing src.
func ReadString(src []byte, off int) (string, int, error) {
	l, off, err := ReadUvarint(src, off)
	if err != nil {
		return "", 0, err
	}
	if l > uint64(len(src)-off) {
		return "", 0, errf("string length %d exceeds payload", l)
	}
	return string(src[off : off+int(l)]), off + int(l), nil
}

// ---- error payloads ----

// AppendErrorPayload encodes a non-OK response payload: the message.
func AppendErrorPayload(dst []byte, msg string) []byte {
	return AppendString(dst, msg)
}

// DecodeErrorPayload decodes a non-OK response payload.
func DecodeErrorPayload(p []byte) string {
	msg, _, err := ReadString(p, 0)
	if err != nil {
		return "(unparsable error payload)"
	}
	return msg
}

// ---- hello ----

// AppendHello encodes an OpHello OK response: the session token.
func AppendHello(dst []byte, token uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, token)
}

// DecodeHello decodes an OpHello OK response.
func DecodeHello(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, errf("hello payload is %d bytes, want 8", len(p))
	}
	return binary.LittleEndian.Uint64(p), nil
}

// ---- attrs ----

// AppendAttrsRequest encodes an OpAttrs request: the names to register.
func AppendAttrsRequest(dst []byte, names []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		dst = AppendString(dst, n)
	}
	return dst
}

// DecodeAttrsRequest decodes an OpAttrs request.
func DecodeAttrsRequest(p []byte) ([]string, error) {
	n, off, err := ReadUvarint(p, 0)
	if err != nil {
		return nil, err
	}
	// Each name costs at least one length byte.
	if n > uint64(len(p)-off) {
		return nil, errf("attr count %d exceeds payload", n)
	}
	names := make([]string, n)
	for i := range names {
		if names[i], off, err = ReadString(p, off); err != nil {
			return nil, err
		}
	}
	if off != len(p) {
		return nil, errf("%d trailing bytes after attrs request", len(p)-off)
	}
	return names, nil
}

// AppendAttrsResponse encodes the ids assigned to an OpAttrs request,
// in request order.
func AppendAttrsResponse(dst []byte, ids []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = binary.AppendUvarint(dst, uint64(id))
	}
	return dst
}

// DecodeAttrsResponse decodes an OpAttrs OK response.
func DecodeAttrsResponse(p []byte) ([]int, error) {
	n, off, err := ReadUvarint(p, 0)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(p)-off) {
		return nil, errf("attr id count %d exceeds payload", n)
	}
	ids := make([]int, n)
	for i := range ids {
		var v uint64
		if v, off, err = ReadUvarint(p, off); err != nil {
			return nil, err
		}
		if v > math.MaxInt32 {
			return nil, errf("implausible attribute id %d", v)
		}
		ids[i] = int(v)
	}
	return ids, nil
}

// ---- dictionary deltas ----

// AppendDictDelta encodes the (id, name) pairs [from, from+len(names))
// that a read response prepends so the client can name attribute ids it
// has not seen. A response with no new ids encodes from=0, n=0.
func AppendDictDelta(dst []byte, from int, names []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(from))
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		dst = AppendString(dst, n)
	}
	return dst
}

// DecodeDictDelta decodes a dictionary delta at p[off:], calling add
// for each (id, name) pair in ascending id order. It returns the offset
// past the delta.
func DecodeDictDelta(p []byte, off int, add func(id int, name string)) (int, error) {
	from, off, err := ReadUvarint(p, off)
	if err != nil {
		return 0, err
	}
	n, off, err := ReadUvarint(p, off)
	if err != nil {
		return 0, err
	}
	if n > uint64(len(p)-off) {
		return 0, errf("dict delta count %d exceeds payload", n)
	}
	for i := uint64(0); i < n; i++ {
		var name string
		if name, off, err = ReadString(p, off); err != nil {
			return 0, err
		}
		add(int(from+i), name)
	}
	return off, nil
}
