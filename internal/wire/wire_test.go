package wire_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"cinderella"
	"cinderella/internal/entity"
	"cinderella/internal/shard"
	"cinderella/internal/wire"
)

// The wire server must serve both store shapes without either knowing.
var _ wire.Store = (*cinderella.DurableTable)(nil)
var _ wire.Store = (*shard.Sharded)(nil)

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello frame")
	raw := wire.AppendFrame(nil, wire.OpBatch, 12345, payload)

	var buf []byte
	f, err := wire.ReadFrame(bytes.NewReader(raw), &buf, wire.DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != wire.Version || f.Kind != wire.OpBatch || f.Seq != 12345 {
		t.Fatalf("header mismatch: %+v", f)
	}
	if !bytes.Equal(f.Payload, payload) {
		t.Fatalf("payload mismatch: %q", f.Payload)
	}
}

func TestFrameBeginEnd(t *testing.T) {
	// Build two frames back to back in one buffer, read both back.
	var out []byte
	off := len(out)
	out = wire.BeginFrame(out, wire.StatusOK, 1)
	out = append(out, "first"...)
	out = wire.EndFrame(out, off)
	off = len(out)
	out = wire.BeginFrame(out, wire.StatusError, 2)
	out = append(out, "second"...)
	out = wire.EndFrame(out, off)

	rd := bytes.NewReader(out)
	var buf []byte
	f1, err := wire.ReadFrame(rd, &buf, wire.DefaultMaxFrame)
	if err != nil || string(f1.Payload) != "first" || f1.Seq != 1 {
		t.Fatalf("first frame: %v %q", err, f1.Payload)
	}
	f2, err := wire.ReadFrame(rd, &buf, wire.DefaultMaxFrame)
	if err != nil || string(f2.Payload) != "second" || f2.Seq != 2 {
		t.Fatalf("second frame: %v %q", err, f2.Payload)
	}
	if _, err := wire.ReadFrame(rd, &buf, wire.DefaultMaxFrame); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestReadFrameMalformed(t *testing.T) {
	cases := map[string][]byte{
		"length below header": binary.LittleEndian.AppendUint32(nil, 3),
		"oversized length":    binary.LittleEndian.AppendUint32(nil, 1<<31),
		"truncated body":      append(binary.LittleEndian.AppendUint32(nil, 100), 1, 2, 3),
		"short header":        {0x10, 0x00},
	}
	for name, raw := range cases {
		var buf []byte
		_, err := wire.ReadFrame(bytes.NewReader(raw), &buf, wire.DefaultMaxFrame)
		var pe wire.ProtocolError
		if !errors.As(err, &pe) {
			t.Errorf("%s: want ProtocolError, got %v", name, err)
		}
	}
}

func TestReadFrameHonorsMax(t *testing.T) {
	// A declared length just over max must fail before allocating.
	raw := binary.LittleEndian.AppendUint32(nil, 1<<20)
	var buf []byte
	_, err := wire.ReadFrame(bytes.NewReader(raw), &buf, 1024)
	var pe wire.ProtocolError
	if !errors.As(err, &pe) {
		t.Fatalf("want ProtocolError, got %v", err)
	}
	if cap(buf) > 4096 {
		t.Fatalf("buffer grew to %d for a rejected frame", cap(buf))
	}
}

func TestAttrsCodec(t *testing.T) {
	names := []string{"alpha", "beta", ""}
	req := wire.AppendAttrsRequest(nil, names)
	got, err := wire.DecodeAttrsRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "alpha" || got[2] != "" {
		t.Fatalf("decoded %v", got)
	}
	if _, err := wire.DecodeAttrsRequest(append(req, 0xff)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}

	ids := []int{0, 7, 300}
	resp := wire.AppendAttrsResponse(nil, ids)
	gotIDs, err := wire.DecodeAttrsResponse(resp)
	if err != nil || len(gotIDs) != 3 || gotIDs[2] != 300 {
		t.Fatalf("decoded %v err %v", gotIDs, err)
	}
}

func TestDictDeltaCodec(t *testing.T) {
	p := wire.AppendDictDelta(nil, 5, []string{"e", "f", "g"})
	p = append(p, 0xAB) // trailing content after the delta
	var got []string
	var ids []int
	off, err := wire.DecodeDictDelta(p, 0, func(id int, name string) {
		ids = append(ids, id)
		got = append(got, name)
	})
	if err != nil {
		t.Fatal(err)
	}
	if off != len(p)-1 || p[off] != 0xAB {
		t.Fatalf("offset %d, want %d", off, len(p)-1)
	}
	if len(ids) != 3 || ids[0] != 5 || ids[2] != 7 || got[1] != "f" {
		t.Fatalf("ids %v names %v", ids, got)
	}
}

func TestHelloAndErrorPayloads(t *testing.T) {
	tok, err := wire.DecodeHello(wire.AppendHello(nil, 0xDEADBEEF))
	if err != nil || tok != 0xDEADBEEF {
		t.Fatalf("token %x err %v", tok, err)
	}
	if _, err := wire.DecodeHello([]byte{1, 2}); err == nil {
		t.Fatal("short hello must fail")
	}
	if got := wire.DecodeErrorPayload(wire.AppendErrorPayload(nil, "boom")); got != "boom" {
		t.Fatalf("error payload %q", got)
	}
}

// buildNumericBatch encodes a batch frame of numeric-only insert ops —
// the steady-state shape the zero-allocation guarantee covers (strings
// inherently cost one allocation each on decode).
func buildNumericBatch(ops int) []byte {
	e := &entity.Entity{}
	e.Set(0, entity.Int(42))
	e.Set(3, entity.Float(2.5))
	e.Set(17, entity.Int(-7))
	payload := binary.AppendUvarint(nil, uint64(ops))
	for i := 0; i < ops; i++ {
		payload = append(payload, wire.BatchInsert)
		payload = e.Marshal(payload)
	}
	return wire.AppendFrame(nil, wire.OpBatch, 99, payload)
}

// decodeBatchFrame is the server's request decode path: frame read plus
// per-op entity decode into a reused scratch entity.
func decodeBatchFrame(rd *bytes.Reader, raw []byte, buf *[]byte, scratch *entity.Entity) (int, error) {
	rd.Reset(raw)
	f, err := wire.ReadFrame(rd, buf, wire.DefaultMaxFrame)
	if err != nil {
		return 0, err
	}
	n, pos, err := wire.ReadUvarint(f.Payload, 0)
	if err != nil {
		return 0, err
	}
	decoded := 0
	for i := uint64(0); i < n; i++ {
		if f.Payload[pos] != wire.BatchInsert {
			return decoded, errors.New("unexpected op kind")
		}
		pos++
		used, err := entity.UnmarshalInto(scratch, f.Payload[pos:])
		if err != nil {
			return decoded, err
		}
		pos += used
		decoded++
	}
	return decoded, nil
}

// TestDecodeSteadyStateZeroAlloc is the allocation guard for the
// acceptance criterion: the binary request decode path (frame read +
// entity decode) must not allocate once its buffers are warm.
func TestDecodeSteadyStateZeroAlloc(t *testing.T) {
	raw := buildNumericBatch(64)
	rd := bytes.NewReader(raw)
	var buf []byte
	var scratch entity.Entity

	var decodeErr error
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := decodeBatchFrame(rd, raw, &buf, &scratch); err != nil {
			decodeErr = err
		}
	})
	if decodeErr != nil {
		t.Fatal(decodeErr)
	}
	if allocs != 0 {
		t.Fatalf("steady-state decode: %v allocs/run, want 0", allocs)
	}
}

func BenchmarkWireDecodeBatch64(b *testing.B) {
	raw := buildNumericBatch(64)
	rd := bytes.NewReader(raw)
	var buf []byte
	var scratch entity.Entity
	b.ReportAllocs()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := decodeBatchFrame(rd, raw, &buf, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}
