// Package workload generates the paper's synthetic query workload
// (Section V-B): one query per individual attribute, plus pairs and
// triples combined from the 20 most frequent attributes. Every query has
// the form
//
//	SELECT a1, a2, … FROM universalTable
//	WHERE a1 IS NOT NULL OR a2 IS NOT NULL …
//
// so an entity is relevant iff it instantiates at least one queried
// attribute, and a query's synopsis is simply its attribute set. The
// package also measures query selectivity against a data set and picks
// representative queries per selectivity bucket, as the paper does
// ("three representative queries for each selectivity").
package workload

import (
	"fmt"
	"sort"

	"cinderella/internal/synopsis"
)

// Query is one attribute-set query.
type Query struct {
	Attrs *synopsis.Set
	// Selectivity is the fraction of entities relevant to the query,
	// filled by Measure.
	Selectivity float64
}

// String renders the query's attribute set.
func (q Query) String() string {
	return fmt.Sprintf("q%v sel=%.3f", q.Attrs, q.Selectivity)
}

// Generate builds the full query set for the given entity synopses:
// singletons over every occurring attribute, pairs and triples over the
// topK most frequent attributes (the paper uses topK = 20).
func Generate(entities []*synopsis.Set, topK int) []Query {
	freq := map[int]int{}
	for _, e := range entities {
		for _, a := range e.Elements(nil) {
			freq[a]++
		}
	}
	attrs := make([]int, 0, len(freq))
	for a := range freq {
		attrs = append(attrs, a)
	}
	// Sort by descending frequency, ties by id for determinism.
	sort.Slice(attrs, func(i, j int) bool {
		if freq[attrs[i]] != freq[attrs[j]] {
			return freq[attrs[i]] > freq[attrs[j]]
		}
		return attrs[i] < attrs[j]
	})

	var queries []Query
	// Singletons: every attribute.
	for _, a := range attrs {
		queries = append(queries, Query{Attrs: synopsis.Of(a)})
	}
	// Pairs and triples of the topK.
	k := topK
	if k > len(attrs) {
		k = len(attrs)
	}
	top := attrs[:k]
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			queries = append(queries, Query{Attrs: synopsis.Of(top[i], top[j])})
		}
	}
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			for l := j + 1; l < len(top); l++ {
				queries = append(queries, Query{Attrs: synopsis.Of(top[i], top[j], top[l])})
			}
		}
	}
	return queries
}

// Measure fills Selectivity for every query: the fraction of entities
// with at least one queried attribute.
func Measure(queries []Query, entities []*synopsis.Set) {
	if len(entities) == 0 {
		return
	}
	for i := range queries {
		hits := 0
		for _, e := range entities {
			if synopsis.Intersects(e, queries[i].Attrs) {
				hits++
			}
		}
		queries[i].Selectivity = float64(hits) / float64(len(entities))
	}
}

// Representatives buckets the measured queries by selectivity and returns
// up to perBucket queries per bucket, covering the full selectivity
// range. Buckets are [i/n, (i+1)/n) over [0,1]. Queries inside a bucket
// are chosen deterministically (spread across the bucket).
func Representatives(queries []Query, buckets, perBucket int) []Query {
	if buckets <= 0 || perBucket <= 0 {
		return nil
	}
	byBucket := make([][]Query, buckets)
	for _, q := range queries {
		b := int(q.Selectivity * float64(buckets))
		if b >= buckets {
			b = buckets - 1
		}
		byBucket[b] = append(byBucket[b], q)
	}
	var out []Query
	for _, qs := range byBucket {
		if len(qs) == 0 {
			continue
		}
		sort.Slice(qs, func(i, j int) bool {
			if qs[i].Selectivity != qs[j].Selectivity {
				return qs[i].Selectivity < qs[j].Selectivity
			}
			return qs[i].Attrs.String() < qs[j].Attrs.String()
		})
		if len(qs) <= perBucket {
			out = append(out, qs...)
			continue
		}
		step := float64(len(qs)-1) / float64(perBucket-1)
		if perBucket == 1 {
			out = append(out, qs[len(qs)/2])
			continue
		}
		prev := -1
		for i := 0; i < perBucket; i++ {
			idx := int(float64(i) * step)
			if idx == prev {
				continue
			}
			prev = idx
			out = append(out, qs[idx])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Selectivity < out[j].Selectivity })
	return out
}

// Synopses extracts the attribute sets of a query list, the form the
// efficiency metric and workload-based partitioning consume.
func Synopses(queries []Query) []*synopsis.Set {
	out := make([]*synopsis.Set, len(queries))
	for i, q := range queries {
		out[i] = q.Attrs
	}
	return out
}
