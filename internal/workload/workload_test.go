package workload

import (
	"testing"

	"cinderella/internal/synopsis"
)

func testEntities() []*synopsis.Set {
	// Attribute 0 on all, 1 on half, 2 on one, 3 never queried directly.
	return []*synopsis.Set{
		synopsis.Of(0, 1),
		synopsis.Of(0, 1),
		synopsis.Of(0, 2),
		synopsis.Of(0),
	}
}

func TestGenerateSingletonsAndCombos(t *testing.T) {
	qs := Generate(testEntities(), 3)
	// 3 occurring attributes -> 3 singletons; top-3 -> C(3,2)=3 pairs,
	// C(3,3)=1 triple.
	if len(qs) != 3+3+1 {
		t.Fatalf("queries = %d, want 7", len(qs))
	}
	sizes := map[int]int{}
	for _, q := range qs {
		sizes[q.Attrs.Len()]++
	}
	if sizes[1] != 3 || sizes[2] != 3 || sizes[3] != 1 {
		t.Fatalf("query sizes = %v", sizes)
	}
}

func TestGenerateTopKLimited(t *testing.T) {
	qs := Generate(testEntities(), 2)
	// 3 singletons + 1 pair + 0 triples.
	if len(qs) != 4 {
		t.Fatalf("queries = %d, want 4", len(qs))
	}
}

func TestGenerateTopKOrderByFrequency(t *testing.T) {
	qs := Generate(testEntities(), 2)
	// The single pair must combine the two most frequent attributes 0,1.
	var pair *Query
	for i := range qs {
		if qs[i].Attrs.Len() == 2 {
			pair = &qs[i]
		}
	}
	if pair == nil || !pair.Attrs.Equal(synopsis.Of(0, 1)) {
		t.Fatalf("pair = %v, want {0, 1}", pair)
	}
}

func TestGenerateEmpty(t *testing.T) {
	if qs := Generate(nil, 20); len(qs) != 0 {
		t.Fatalf("queries from empty data = %d", len(qs))
	}
}

func TestMeasureSelectivity(t *testing.T) {
	es := testEntities()
	qs := Generate(es, 3)
	Measure(qs, es)
	bySyn := map[string]float64{}
	for _, q := range qs {
		bySyn[q.Attrs.String()] = q.Selectivity
	}
	if bySyn["{0}"] != 1.0 {
		t.Errorf("sel({0}) = %v, want 1", bySyn["{0}"])
	}
	if bySyn["{1}"] != 0.5 {
		t.Errorf("sel({1}) = %v, want 0.5", bySyn["{1}"])
	}
	if bySyn["{2}"] != 0.25 {
		t.Errorf("sel({2}) = %v, want 0.25", bySyn["{2}"])
	}
	// OR semantics: {1,2} matches 3 of 4.
	if bySyn["{1, 2}"] != 0.75 {
		t.Errorf("sel({1,2}) = %v, want 0.75", bySyn["{1, 2}"])
	}
}

func TestMeasureEmptyEntities(t *testing.T) {
	qs := []Query{{Attrs: synopsis.Of(1)}}
	Measure(qs, nil) // must not divide by zero
	if qs[0].Selectivity != 0 {
		t.Fatalf("selectivity = %v", qs[0].Selectivity)
	}
}

func TestRepresentativesCoverage(t *testing.T) {
	// Synthetic measured queries spread over [0,1].
	var qs []Query
	for i := 0; i < 100; i++ {
		qs = append(qs, Query{Attrs: synopsis.Of(i), Selectivity: float64(i) / 100})
	}
	reps := Representatives(qs, 10, 3)
	if len(reps) != 30 {
		t.Fatalf("representatives = %d, want 30", len(reps))
	}
	// Sorted by selectivity and covering the range.
	for i := 1; i < len(reps); i++ {
		if reps[i].Selectivity < reps[i-1].Selectivity {
			t.Fatal("representatives not sorted")
		}
	}
	if reps[0].Selectivity > 0.1 || reps[len(reps)-1].Selectivity < 0.9 {
		t.Fatalf("range not covered: %v .. %v", reps[0].Selectivity, reps[len(reps)-1].Selectivity)
	}
}

func TestRepresentativesSparseBuckets(t *testing.T) {
	qs := []Query{
		{Attrs: synopsis.Of(1), Selectivity: 0.05},
		{Attrs: synopsis.Of(2), Selectivity: 0.95},
	}
	reps := Representatives(qs, 10, 3)
	if len(reps) != 2 {
		t.Fatalf("representatives = %d, want 2", len(reps))
	}
	if reps := Representatives(qs, 0, 3); reps != nil {
		t.Fatal("bad bucket count accepted")
	}
	if reps := Representatives(qs, 10, 1); len(reps) != 2 {
		t.Fatalf("perBucket=1: %d", len(reps))
	}
}

func TestRepresentativesDeterministic(t *testing.T) {
	es := testEntities()
	qs1 := Generate(es, 3)
	Measure(qs1, es)
	qs2 := Generate(es, 3)
	Measure(qs2, es)
	r1 := Representatives(qs1, 5, 2)
	r2 := Representatives(qs2, 5, 2)
	if len(r1) != len(r2) {
		t.Fatal("nondeterministic representative count")
	}
	for i := range r1 {
		if !r1[i].Attrs.Equal(r2[i].Attrs) {
			t.Fatal("nondeterministic representatives")
		}
	}
}

func TestSynopses(t *testing.T) {
	qs := []Query{{Attrs: synopsis.Of(1, 2)}, {Attrs: synopsis.Of(3)}}
	ss := Synopses(qs)
	if len(ss) != 2 || !ss[0].Equal(synopsis.Of(1, 2)) {
		t.Fatalf("synopses = %v", ss)
	}
}

func TestQueryString(t *testing.T) {
	q := Query{Attrs: synopsis.Of(1), Selectivity: 0.25}
	if q.String() == "" {
		t.Fatal("empty String")
	}
}
