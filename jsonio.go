package cinderella

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Vacuum rewrites all partition storage without tombstones, reclaiming
// the space left behind by deletes and updates. It returns the number of
// pages released.
func (t *Table) Vacuum() int { return t.inner.Vacuum() }

// ImportJSONL reads newline-delimited JSON objects and inserts each as a
// document. JSON numbers become float64 attributes, strings stay
// strings, booleans become int 0/1, and null values are skipped; nested
// objects or arrays are rejected (universal tables are flat). It returns
// the ids of the inserted documents; on error, documents inserted so far
// remain in the table.
func (t *Table) ImportJSONL(r io.Reader) ([]ID, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var ids []ID
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(raw, &obj); err != nil {
			return ids, fmt.Errorf("cinderella: line %d: %w", line, err)
		}
		doc := make(Doc, len(obj))
		for k, v := range obj {
			switch x := v.(type) {
			case nil:
				// skip
			case float64:
				doc[k] = x
			case string:
				doc[k] = x
			case bool:
				if x {
					doc[k] = 1
				} else {
					doc[k] = 0
				}
			default:
				return ids, fmt.Errorf("cinderella: line %d: attribute %q has non-scalar value", line, k)
			}
		}
		ids = append(ids, t.Insert(doc))
	}
	return ids, sc.Err()
}

// ExportJSONL writes every live document as one JSON object per line,
// ordered by id. Round trip: ExportJSONL followed by ImportJSONL yields
// the same documents (ints become JSON numbers and re-import as floats).
func (t *Table) ExportJSONL(w io.Writer) error {
	results := t.inner.ScanAll()
	sort.Slice(results, func(i, j int) bool { return results[i].ID < results[j].ID })
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range results {
		if err := enc.Encode(t.toDoc(r.Entity)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
