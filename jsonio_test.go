package cinderella

import (
	"bytes"
	"strings"
	"testing"
)

func TestImportJSONL(t *testing.T) {
	tbl := Open(Config{})
	in := strings.Join([]string{
		`{"name":"camera","aperture":2.0,"wifi":true}`,
		``,
		`{"name":"disk","rotation":7200,"note":null}`,
	}, "\n")
	ids, err := tbl.ImportJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || tbl.Len() != 2 {
		t.Fatalf("imported %d docs", len(ids))
	}
	doc, _ := tbl.Get(ids[0])
	if doc["aperture"] != 2.0 || doc["wifi"] != int64(1) {
		t.Fatalf("doc = %v", doc)
	}
	if _, has := doc["note"]; has {
		t.Fatal("null attribute imported")
	}
	if res := tbl.Query("rotation"); len(res) != 1 {
		t.Fatalf("Query = %d", len(res))
	}
}

func TestImportJSONLErrors(t *testing.T) {
	tbl := Open(Config{})
	if _, err := tbl.ImportJSONL(strings.NewReader(`{"a": 1}` + "\nnot json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	// Documents before the error remain.
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if _, err := tbl.ImportJSONL(strings.NewReader(`{"a": [1,2]}`)); err == nil {
		t.Fatal("nested value accepted")
	}
	if _, err := tbl.ImportJSONL(strings.NewReader(`{"a": {"b":1}}`)); err == nil {
		t.Fatal("object value accepted")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tbl := Open(Config{PartitionSizeLimit: 10})
	for i := 0; i < 50; i++ {
		tbl.Insert(Doc{"n": float64(i), "tag": "x"})
	}
	var buf bytes.Buffer
	if err := tbl.ExportJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 50 {
		t.Fatalf("exported %d lines", got)
	}
	tbl2 := Open(Config{})
	ids, err := tbl2.ImportJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 50 {
		t.Fatalf("reimported %d", len(ids))
	}
	if res := tbl2.Query("tag"); len(res) != 50 {
		t.Fatalf("Query = %d", len(res))
	}
	// Values survive.
	var sum float64
	for _, r := range tbl2.Query("n") {
		sum += r.Doc["n"].(float64)
	}
	if sum != 49*50/2 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestVacuumFacade(t *testing.T) {
	tbl := Open(Config{})
	var ids []ID
	for i := 0; i < 3000; i++ {
		ids = append(ids, tbl.Insert(Doc{"a": i, "pad": "xxxxxxxxxxxxxxxxxxxxxxxx"}))
	}
	for i, id := range ids {
		if i%4 != 0 {
			tbl.Delete(id)
		}
	}
	if released := tbl.Vacuum(); released <= 0 {
		t.Fatalf("released = %d", released)
	}
	if got := len(tbl.Query("a")); got != 750 {
		t.Fatalf("Query after vacuum = %d", got)
	}
	got, ok := tbl.Get(ids[0])
	if !ok || got["a"] != int64(0) {
		t.Fatalf("doc after vacuum = %v, %v", got, ok)
	}
}
