package cinderella

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"cinderella/internal/recluster"
)

// raceDoc mirrors the adversarial shift shape: two common attributes
// plus one from each of two independent families, so reclustering has
// real migrations to perform while the writers run.
func raceDoc(i int) Doc {
	return Doc{
		"c0":                        i,
		"c1":                        "x",
		fmt.Sprintf("a%d", i%8):     1,
		fmt.Sprintf("b%d", (i/8)%8): 1,
	}
}

// TestReclusterConcurrentIntegrity is the satellite property test: with
// writers, readers, and the reclusterer all running concurrently, no
// entity is ever lost or duplicated — neither in memory nor across a
// WAL reopen.
func TestReclusterConcurrentIntegrity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "race.wal")
	reg := NewObserver()
	cfg := Config{PartitionSizeLimit: 16, Obs: reg}
	dt, err := OpenFile(path, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const (
		writers      = 4
		opsPerWriter = 300
	)
	var (
		writerWG, bgWG sync.WaitGroup
		stop           atomic.Bool
		aliveMu        sync.Mutex
		alive          = make(map[ID]bool)
	)

	// Writers: each inserts its own stream, updating and deleting a
	// fraction of its own ids so liveness churns under the migrations.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			var mine []ID
			for i := 0; i < opsPerWriter; i++ {
				id, err := dt.Insert(raceDoc(w*opsPerWriter + i))
				if err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				mine = append(mine, id)
				aliveMu.Lock()
				alive[id] = true
				aliveMu.Unlock()
				switch i % 5 {
				case 2: // update an earlier entity in place
					if _, err := dt.Update(mine[i/2], raceDoc(w*opsPerWriter+i+1)); err != nil {
						t.Errorf("update: %v", err)
						return
					}
				case 4: // delete an earlier entity
					victim := mine[i/2]
					ok, err := dt.Delete(victim)
					if err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					if ok {
						aliveMu.Lock()
						delete(alive, victim)
						aliveMu.Unlock()
					}
				}
			}
		}(w)
	}

	// Readers: sweep both families to keep the heat map and the query
	// mix hot while the migrations run.
	for r := 0; r < 2; r++ {
		bgWG.Add(1)
		go func(r int) {
			defer bgWG.Done()
			for i := 0; !stop.Load(); i++ {
				fam := "a"
				if r == 1 {
					fam = "b"
				}
				dt.Query(fmt.Sprintf("%s%d", fam, i%8))
			}
		}(r)
	}

	// The reclusterer ticks as fast as it can for the whole run.
	m := recluster.New(dt, reg, recluster.Config{
		BatchSize: 32, MaxVictims: 4, MinQueries: 1, Alpha: 0.9,
	})
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for !stop.Load() {
			m.Tick()
		}
	}()

	writerWG.Wait()
	stop.Store(true)
	bgWG.Wait()

	check := func(label string, tbl *Table) {
		t.Helper()
		recs := tbl.ScanAll()
		aliveMu.Lock()
		defer aliveMu.Unlock()
		if len(recs) != len(alive) {
			t.Fatalf("%s: %d live records, want %d", label, len(recs), len(alive))
		}
		seen := make(map[ID]bool, len(recs))
		for _, rec := range recs {
			if seen[rec.ID] {
				t.Fatalf("%s: duplicate entity %d", label, rec.ID)
			}
			seen[rec.ID] = true
			if !alive[rec.ID] {
				t.Fatalf("%s: unexpected entity %d (deleted or never inserted)", label, rec.ID)
			}
		}
	}
	check("live table", dt.Table)

	// The concurrent phase almost always migrates entities; if timing
	// starved the ticker, force a few deterministic rounds so the test
	// always exercises migration before the reopen recount.
	for round := 0; m.Status().Moved == 0 && round < 20; round++ {
		for i := 0; i < 8; i++ {
			dt.Query(fmt.Sprintf("b%d", i))
		}
		m.Tick()
	}
	if m.Status().Moved == 0 {
		t.Fatal("reclusterer never moved an entity; the race proved nothing")
	}
	check("live table after forced rounds", dt.Table)
	m.Close()
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: WAL replay must reconstruct exactly the same live set.
	dt2, err := OpenFile(path, Config{PartitionSizeLimit: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer dt2.Close()
	check("reopened table", dt2.Table)
}

// TestReclusterLockedVsSnapshotEquivalence interleaves recluster ticks
// with paired locked/snapshot reads: mid-migration, both read paths
// must return bit-identical results and identical reports.
func TestReclusterLockedVsSnapshotEquivalence(t *testing.T) {
	reg := NewObserver()
	dt, err := OpenFile(filepath.Join(t.TempDir(), "equiv.wal"), Config{PartitionSizeLimit: 16, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer dt.Close()
	for i := 0; i < 256; i++ {
		if _, err := dt.Insert(raceDoc(i)); err != nil {
			t.Fatal(err)
		}
	}

	m := recluster.New(dt, reg, recluster.Config{
		BatchSize: 16, MaxVictims: 2, MinQueries: 1, Alpha: 0.9,
	})
	defer m.Close()

	compare := func(attr string) {
		t.Helper()
		dt.SetLockedReads(true)
		lockedRes, lockedRep := dt.QueryWithReport(attr)
		dt.SetLockedReads(false)
		snapRes, snapRep := dt.QueryWithReport(attr)
		if !reflect.DeepEqual(lockedRes, snapRes) {
			t.Fatalf("query %q: locked and snapshot results differ (%d vs %d records)",
				attr, len(lockedRes), len(snapRes))
		}
		if lockedRep != snapRep {
			t.Fatalf("query %q: locked report %+v != snapshot report %+v", attr, lockedRep, snapRep)
		}
	}

	for round := 0; round < 6; round++ {
		// Warm the heat map so the next tick has victims, with the "b"
		// family as the workload being chased.
		for i := 0; i < 8; i++ {
			dt.Query(fmt.Sprintf("b%d", i))
		}
		m.Tick()
		for i := 0; i < 8; i++ {
			compare(fmt.Sprintf("b%d", i))
			compare(fmt.Sprintf("a%d", i))
		}
	}
	if m.Status().Moved == 0 {
		t.Fatal("reclusterer never moved an entity; equivalence proved nothing")
	}
}
