#!/usr/bin/env sh
# Tier-1 verification: build, vet, and the full test suite under the race
# detector. Run from the repo root (make verify does).
set -eu

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "verify: OK"
