#!/usr/bin/env sh
# Tier-1 verification: build, vet, and the full test suite under the race
# detector. Run from the repo root (make verify does).
set -eu

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

# Telemetry regressions get a dedicated pass: the efficiency-exactness
# property test, the SetParallelism race test, the event-trace lifecycle,
# and the query-tracing suite — sampling cadence, slow-ring bounds, the
# fan-out span merge, and the writers-vs-traced-readers heat-equals-spans
# property on Table and Sharded — must hold under the race detector with
# more aggressive interleaving.
echo "== go test -race -count=2 telemetry suite"
go test -race -count=2 -run 'TestStreamingEfficiency|TestSetParallelismRace|TestTrace' \
	./internal/table ./internal/obs ./internal/shard

# Trace overhead gate: 1-in-64 span sampling with the always-on heat map
# must stay within the <= 5% query-path budget (BENCH_trace.json tracks
# the full-scale run; this re-measures at smoke scale).
echo "== trace overhead gate"
TRACE_JSON=$(mktemp)
go run ./cmd/cinderella-bench -exp trace -entities 20000 -json "$TRACE_JSON"
grep -q '"within_budget": true' "$TRACE_JSON" \
	|| { echo "verify: trace overhead exceeds budget"; cat "$TRACE_JSON"; exit 1; }
rm -f "$TRACE_JSON"

# Service-layer pass: the drain-loses-nothing and crash-recovery tests
# are the durability contract of cinderellad; they and the committer
# tests must hold under the race detector.
echo "== go test -race service layer"
go test -race -run 'TestServer|TestCommitter|TestDurableClose|TestDurableLSN' \
	./internal/server ./client .

# Sharded pass: concurrent writers with fan-out readers, striped-WAL
# crash recovery, and the N=1 placement-identity property must hold
# under the race detector.
echo "== go test -race sharded suite"
go test -race -run 'TestSharded' ./internal/shard

# Wire-protocol pass: the binary codec and server (frame parsing, batch
# partial failure, drain semantics, restart durability), the binary
# client's retry contract (retry only provably-unapplied ops), and the
# steady-state zero-allocation decode guard must hold under the race
# detector.
echo "== go test -race wire protocol suite"
go test -race \
	-run 'TestBinary|TestFrame|TestReadFrame|TestAttrs|TestDictDelta|TestHello|TestDecodeSteadyStateZeroAlloc|TestServer' \
	./internal/wire ./client

# Snapshot-read pass: the mixed read/write contract — continuous writers
# vs. lock-free ScanAll/Select/SelectWhere readers on Table and Sharded,
# storage view immutability under mutation, locked-vs-snapshot
# QueryReport equivalence, and reads served mid-drain — must hold under
# the race detector.
echo "== go test -race snapshot read suite"
go test -race \
	-run 'TestSnapshot|TestView|TestSidecar|TestShardedConcurrentWritersScanAll|TestServerReadsServedDuringDrain' \
	./internal/table ./internal/storage ./internal/shard ./internal/server

# Bitmap scan-kernel pass: the word-parallel kernel's equivalence
# contract — candidate sets, results, QueryReport counters, and Stats
# deltas bit-identical to the per-record sidecar path (and the locked
# full-decode baseline) across both tiers, under concurrent churn, with
# the captured-view stability and zero-allocation guarantees — must
# hold under the race detector.
echo "== go test -race bitmap scan suite"
go test -race -run 'TestBitmap' ./internal/storage ./internal/table

# Scan bench gate: the kernel must beat the per-record sidecar baseline
# by >= 3x on the selective bucket of the coarse-partitioned arm, with
# the bitmap-vs-sidecar equivalence sweep green and a fully pruned
# frozen partition charging zero cold bytes (BENCH_scan.json tracks the
# full-scale run; this re-measures at smoke scale).
echo "== scan kernel gate"
SCAN_JSON=$(mktemp)
go run ./cmd/cinderella-bench -exp scan -entities 20000 -json "$SCAN_JSON"
grep -q '"within_budget": true' "$SCAN_JSON" \
	|| { echo "verify: bitmap kernel speedup under 3x"; cat "$SCAN_JSON"; exit 1; }
grep -q '"equivalence_ok": true' "$SCAN_JSON" \
	|| { echo "verify: bitmap and sidecar scans disagree"; cat "$SCAN_JSON"; exit 1; }
grep -q '"prune_zero_cold_ok": true' "$SCAN_JSON" \
	|| { echo "verify: pruned frozen scan charged cold bytes"; cat "$SCAN_JSON"; exit 1; }
rm -f "$SCAN_JSON"

# Recluster pass: the background reclusterer's integrity contract — no
# entity lost or duplicated under concurrent writers/readers (including
# a full reopen recount), locked-vs-snapshot equivalence mid-migration,
# shard-stamped progress, heat decay, and the manager unit suite — must
# hold under the race detector.
echo "== go test -race recluster suite"
go test -race -run 'TestRecluster|TestHeat|TestVictimSelection|TestGovernorThrottles|TestPauseResume|TestOutcomeSettlement|TestWorkloadBlender|TestDebugReclusterEndpoint' \
	./internal/recluster ./internal/obs ./internal/shard .

# Tier pass: the tiered-storage integrity contract — freeze/thaw
# round trips that preserve record ids, frozen partitions pruned with
# zero cold bytes, mutations thawing transparently, tier transitions
# under concurrent lock-free readers, cold-image corruption refusal,
# and the durable freeze→kill→reopen recovery suite — must hold under
# the race detector. The manager unit suite rides along.
echo "== go test -race tier suite"
go test -race -run 'TestCold|TestFreeze|TestFrozen|TestMutationsThaw|TestVacuumSkipsFrozen|TestTierTransitions|TestDurableTier|TestIdlePartitions|TestResidentBudget|TestMaxFreezes|TestStatusAggregates|TestSingleAdapter' \
	./internal/tier ./internal/table ./internal/storage .

# Tier bench gate: under a Zipf-skewed read mix the tiering manager
# must get the resident footprint under half the working set, the
# frozen partitions must compress below 0.6 raw, hot-set queries must
# prune the cold tier without charging a single cold byte, and the
# reopen must recount exactly with both tiers populated
# (BENCH_tier.json tracks the full-scale run, including the hot-p99
# budget; this re-measures the deterministic gates at smoke scale).
echo "== tier budget gate"
TIER_JSON=$(mktemp)
go run ./cmd/cinderella-bench -exp tier -entities 8000 -json "$TIER_JSON"
grep -q '"within_budget": true' "$TIER_JSON" \
	|| { echo "verify: tiering missed the resident-byte budget"; cat "$TIER_JSON"; exit 1; }
grep -q '"compress_ok": true' "$TIER_JSON" \
	|| { echo "verify: cold tier compression ratio >= 0.6"; cat "$TIER_JSON"; exit 1; }
grep -q '"prune_zero_cold_ok": true' "$TIER_JSON" \
	|| { echo "verify: pruned query charged cold bytes"; cat "$TIER_JSON"; exit 1; }
grep -q '"cold_probe_charged_ok": true' "$TIER_JSON" \
	|| { echo "verify: cold scan charged no cold bytes"; cat "$TIER_JSON"; exit 1; }
grep -q '"reopen_count_ok": true' "$TIER_JSON" \
	|| { echo "verify: tier bench lost entities on reopen"; cat "$TIER_JSON"; exit 1; }
grep -q '"reopen_both_tiers": true' "$TIER_JSON" \
	|| { echo "verify: frozen set not restored on reopen"; cat "$TIER_JSON"; exit 1; }
rm -f "$TIER_JSON"

# Recluster bench gate: after an adversarial workload shift the
# reclusterer must recover at least half of the lost EFFICIENCY while
# keeping writer p99 within budget (BENCH_recluster.json tracks the
# full-scale run; this re-measures at smoke scale).
echo "== recluster recovery gate"
RECL_JSON=$(mktemp)
go run ./cmd/cinderella-bench -exp recluster -entities 2000 -json "$RECL_JSON"
grep -q '"recovered_ok": true' "$RECL_JSON" \
	|| { echo "verify: recluster recovered < 50% of lost efficiency"; cat "$RECL_JSON"; exit 1; }
grep -q '"reopen_count_ok": true' "$RECL_JSON" \
	|| { echo "verify: recluster bench lost entities on reopen"; cat "$RECL_JSON"; exit 1; }
grep -q '"reopen_no_dups_ok": true' "$RECL_JSON" \
	|| { echo "verify: recluster bench duplicated entities on reopen"; cat "$RECL_JSON"; exit 1; }
rm -f "$RECL_JSON"

# End-to-end daemon smoke: build cinderellad, start it on an ephemeral
# port, drive inserts and a query through the HTTP client, SIGTERM it,
# and require a clean drained exit plus an intact WAL on reopen.
echo "== cinderellad e2e smoke"
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
go build -race -o "$SMOKE/cinderellad" ./cmd/cinderellad
go build -o "$SMOKE/cinderella-load" ./cmd/cinderella-load
"$SMOKE/cinderellad" -addr 127.0.0.1:0 -wal "$SMOKE/smoke.wal" \
	-slow-query 1us -trace-sample 8 \
	-addr-file "$SMOKE/addr" >"$SMOKE/daemon.log" 2>&1 &
DPID=$!
for i in $(seq 1 50); do
	[ -s "$SMOKE/addr" ] && break
	sleep 0.1
done
[ -s "$SMOKE/addr" ] || { echo "verify: daemon never bound"; cat "$SMOKE/daemon.log"; exit 1; }
ADDR=$(cat "$SMOKE/addr")
"$SMOKE/cinderella-load" -target "http://$ADDR" -entities 500 -clients 8 -readers 4 \
	|| { echo "verify: load against daemon failed"; cat "$SMOKE/daemon.log"; exit 1; }
# The observability surface must be live after the load: the heat map
# has rows, the slow log (armed at 1µs, so every query qualifies)
# retained spans, and ?trace=1 returns an inline span tree.
curl -sf "http://$ADDR/debug/heat" | grep -q '"enabled": true' \
	|| { echo "verify: /debug/heat not enabled"; exit 1; }
curl -sf "http://$ADDR/debug/heat" | grep -q '"records_read"' \
	|| { echo "verify: /debug/heat has no rows after reads"; exit 1; }
curl -sf "http://$ADDR/debug/slow" | grep -q '"trace_id"' \
	|| { echo "verify: /debug/slow retained no spans at a 1us threshold"; exit 1; }
curl -sf "http://$ADDR/v1/query-report?attrs=universal_00&trace=1" | grep -q '"trace"' \
	|| { echo "verify: ?trace=1 returned no inline span"; exit 1; }
curl -sf "http://$ADDR/metrics" | grep -q '^cinderella_slow_queries_total [1-9]' \
	|| { echo "verify: slow-query counter never moved"; exit 1; }
# Mid-drain read smoke: a background query loop runs across the SIGTERM
# drain. Reads must stay served until the listener closes — the loop
# exits on connection failure (curl code 000); any 503 on a read route
# means drain rejected a reader, a regression in the read/write split.
QLOG="$SMOKE/qdrain.log"
: >"$QLOG"
( while :; do
	code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/v1/query?attrs=universal_00") || code=000
	echo "$code" >>"$QLOG"
	[ "$code" = "000" ] && exit 0
done ) &
QPID=$!
sleep 0.2
kill -TERM "$DPID"
wait "$DPID" || { echo "verify: daemon exited non-zero"; cat "$SMOKE/daemon.log"; exit 1; }
wait "$QPID" 2>/dev/null || true
if grep -q '^503$' "$QLOG"; then
	echo "verify: reads rejected during drain"; sort "$QLOG" | uniq -c; exit 1
fi
grep -q '^200$' "$QLOG" || { echo "verify: no successful read around drain"; cat "$QLOG"; exit 1; }
echo "mid-drain reads: $(grep -c '^200$' "$QLOG") served, none rejected"
# Reopen the drained WAL: all 500 acked docs must replay.
"$SMOKE/cinderellad" -addr 127.0.0.1:0 -wal "$SMOKE/smoke.wal" \
	-addr-file "$SMOKE/addr2" >"$SMOKE/daemon2.log" 2>&1 &
DPID=$!
for i in $(seq 1 50); do
	[ -s "$SMOKE/addr2" ] && break
	sleep 0.1
done
DOCS=$(curl -sf "http://$(cat "$SMOKE/addr2")/v1/health" | sed 's/.*"docs":\([0-9]*\).*/\1/')
kill -TERM "$DPID"
wait "$DPID" || true
[ "$DOCS" = "500" ] || { echo "verify: reopened daemon has $DOCS docs, want 500"; exit 1; }
echo "e2e smoke: 500 docs drained, replayed, and recounted"

# Sharded daemon smoke: same drill with -shards 4 (-wal is a directory
# of striped WALs). The wire format is unchanged — the same loader and
# health probe must work — and the drained recount spans all shards.
echo "== cinderellad -shards 4 e2e smoke"
"$SMOKE/cinderellad" -addr 127.0.0.1:0 -wal "$SMOKE/sharded" -shards 4 \
	-addr-file "$SMOKE/addr3" >"$SMOKE/daemon3.log" 2>&1 &
DPID=$!
for i in $(seq 1 50); do
	[ -s "$SMOKE/addr3" ] && break
	sleep 0.1
done
[ -s "$SMOKE/addr3" ] || { echo "verify: sharded daemon never bound"; cat "$SMOKE/daemon3.log"; exit 1; }
ADDR=$(cat "$SMOKE/addr3")
"$SMOKE/cinderella-load" -target "http://$ADDR" -entities 500 -clients 8 \
	|| { echo "verify: load against sharded daemon failed"; cat "$SMOKE/daemon3.log"; exit 1; }
kill -TERM "$DPID"
wait "$DPID" || { echo "verify: sharded daemon exited non-zero"; cat "$SMOKE/daemon3.log"; exit 1; }
[ -f "$SMOKE/sharded/manifest.json" ] || { echo "verify: no shard manifest written"; exit 1; }
"$SMOKE/cinderellad" -addr 127.0.0.1:0 -wal "$SMOKE/sharded" -shards 4 \
	-addr-file "$SMOKE/addr4" >"$SMOKE/daemon4.log" 2>&1 &
DPID=$!
for i in $(seq 1 50); do
	[ -s "$SMOKE/addr4" ] && break
	sleep 0.1
done
DOCS=$(curl -sf "http://$(cat "$SMOKE/addr4")/v1/health" | sed 's/.*"docs":\([0-9]*\).*/\1/')
kill -TERM "$DPID"
wait "$DPID" || true
[ "$DOCS" = "500" ] || { echo "verify: reopened sharded daemon has $DOCS docs, want 500"; exit 1; }
echo "sharded e2e smoke: 500 docs drained, replayed across 4 shards, and recounted"

# Binary wire smoke: the same drill over the binary protocol. Start the
# daemon with both listeners, drive batched inserts through the binary
# port, SIGTERM it, and require a clean drained exit with every acked
# write surviving the reopen — zero acked-write loss over the wire path.
echo "== cinderellad binary wire e2e smoke"
"$SMOKE/cinderellad" -addr 127.0.0.1:0 -bin-addr 127.0.0.1:0 -wal "$SMOKE/wire.wal" \
	-addr-file "$SMOKE/addr5" -bin-addr-file "$SMOKE/baddr" >"$SMOKE/daemon5.log" 2>&1 &
DPID=$!
for i in $(seq 1 50); do
	[ -s "$SMOKE/baddr" ] && break
	sleep 0.1
done
[ -s "$SMOKE/baddr" ] || { echo "verify: binary port never bound"; cat "$SMOKE/daemon5.log"; exit 1; }
BADDR=$(cat "$SMOKE/baddr")
"$SMOKE/cinderella-load" -proto binary -target "$BADDR" -entities 500 -clients 8 -batch 32 \
	>"$SMOKE/wireload.log" 2>&1 \
	|| { echo "verify: binary load failed"; cat "$SMOKE/wireload.log" "$SMOKE/daemon5.log"; exit 1; }
cat "$SMOKE/wireload.log"
if grep -q 'ops failed' "$SMOKE/wireload.log"; then
	echo "verify: binary load had failed ops"; cat "$SMOKE/daemon5.log"; exit 1
fi
kill -TERM "$DPID"
wait "$DPID" || { echo "verify: binary daemon exited non-zero"; cat "$SMOKE/daemon5.log"; exit 1; }
"$SMOKE/cinderellad" -addr 127.0.0.1:0 -wal "$SMOKE/wire.wal" \
	-addr-file "$SMOKE/addr6" >"$SMOKE/daemon6.log" 2>&1 &
DPID=$!
for i in $(seq 1 50); do
	[ -s "$SMOKE/addr6" ] && break
	sleep 0.1
done
DOCS=$(curl -sf "http://$(cat "$SMOKE/addr6")/v1/health" | sed 's/.*"docs":\([0-9]*\).*/\1/')
kill -TERM "$DPID"
wait "$DPID" || true
[ "$DOCS" = "500" ] || { echo "verify: reopened wire daemon has $DOCS docs, want 500"; exit 1; }
echo "binary wire smoke: 500 docs acked over the wire, drained, and recounted"

# Recluster daemon smoke: start cinderellad with the background
# reclusterer ticking fast, drive a load whose reader mix flips halfway
# through (-shift-at), and require the /debug/recluster surface and the
# recluster metric families to be live before a clean drained exit with
# a full recount.
echo "== cinderellad -recluster e2e smoke"
"$SMOKE/cinderellad" -addr 127.0.0.1:0 -wal "$SMOKE/recl.wal" \
	-recluster -recluster-interval 100ms -recluster-batch 64 \
	-addr-file "$SMOKE/addr7" >"$SMOKE/daemon7.log" 2>&1 &
DPID=$!
for i in $(seq 1 50); do
	[ -s "$SMOKE/addr7" ] && break
	sleep 0.1
done
[ -s "$SMOKE/addr7" ] || { echo "verify: recluster daemon never bound"; cat "$SMOKE/daemon7.log"; exit 1; }
ADDR=$(cat "$SMOKE/addr7")
"$SMOKE/cinderella-load" -target "http://$ADDR" -entities 500 -clients 8 \
	-readers 4 -shift-at 250 \
	|| { echo "verify: shifted load against recluster daemon failed"; cat "$SMOKE/daemon7.log"; exit 1; }
sleep 0.3
curl -sf "http://$ADDR/debug/recluster" | grep -q '"enabled": true' \
	|| { echo "verify: /debug/recluster not enabled"; exit 1; }
curl -sf "http://$ADDR/debug/recluster" | grep -q '"rounds": [1-9]' \
	|| { echo "verify: reclusterer never completed a round"; curl -s "http://$ADDR/debug/recluster"; exit 1; }
curl -sf "http://$ADDR/metrics" | grep -q '^cinderella_recluster_rounds_total [1-9]' \
	|| { echo "verify: recluster round counter never moved"; exit 1; }
kill -TERM "$DPID"
wait "$DPID" || { echo "verify: recluster daemon exited non-zero"; cat "$SMOKE/daemon7.log"; exit 1; }
"$SMOKE/cinderellad" -addr 127.0.0.1:0 -wal "$SMOKE/recl.wal" \
	-addr-file "$SMOKE/addr8" >"$SMOKE/daemon8.log" 2>&1 &
DPID=$!
for i in $(seq 1 50); do
	[ -s "$SMOKE/addr8" ] && break
	sleep 0.1
done
DOCS=$(curl -sf "http://$(cat "$SMOKE/addr8")/v1/health" | sed 's/.*"docs":\([0-9]*\).*/\1/')
kill -TERM "$DPID"
wait "$DPID" || true
[ "$DOCS" = "500" ] || { echo "verify: reopened recluster daemon has $DOCS docs, want 500"; exit 1; }
echo "recluster smoke: shifted load reclustered, drained, and recounted"

# Tier daemon smoke: start cinderellad with the tiering manager ticking
# fast and no resident budget (every idle partition freezes), load data,
# let the heat go quiet, and require /debug/tier to show frozen
# partitions and the freeze metric to move before a clean drained exit
# with a full recount — frozen partitions must survive the restart.
echo "== cinderellad -tier e2e smoke"
"$SMOKE/cinderellad" -addr 127.0.0.1:0 -wal "$SMOKE/tier.wal" \
	-tier -tier-interval 100ms -tier-idle-ticks 1 -tier-max-freezes 64 \
	-addr-file "$SMOKE/addr9" >"$SMOKE/daemon9.log" 2>&1 &
DPID=$!
for i in $(seq 1 50); do
	[ -s "$SMOKE/addr9" ] && break
	sleep 0.1
done
[ -s "$SMOKE/addr9" ] || { echo "verify: tier daemon never bound"; cat "$SMOKE/daemon9.log"; exit 1; }
ADDR=$(cat "$SMOKE/addr9")
"$SMOKE/cinderella-load" -target "http://$ADDR" -entities 500 -clients 8 \
	|| { echo "verify: load against tier daemon failed"; cat "$SMOKE/daemon9.log"; exit 1; }
# Several idle intervals pass; the manager must have frozen the
# now-quiet partitions.
sleep 1
curl -sf "http://$ADDR/debug/tier" | grep -q '"enabled": true' \
	|| { echo "verify: /debug/tier not enabled"; exit 1; }
curl -sf "http://$ADDR/debug/tier" | grep -q '"frozen_partitions": [1-9]' \
	|| { echo "verify: tiering froze nothing"; curl -s "http://$ADDR/debug/tier"; exit 1; }
curl -sf "http://$ADDR/metrics" | grep -q '^cinderella_tier_freezes_total [1-9]' \
	|| { echo "verify: tier freeze counter never moved"; exit 1; }
kill -TERM "$DPID"
wait "$DPID" || { echo "verify: tier daemon exited non-zero"; cat "$SMOKE/daemon9.log"; exit 1; }
"$SMOKE/cinderellad" -addr 127.0.0.1:0 -wal "$SMOKE/tier.wal" \
	-addr-file "$SMOKE/addr10" >"$SMOKE/daemon10.log" 2>&1 &
DPID=$!
for i in $(seq 1 50); do
	[ -s "$SMOKE/addr10" ] && break
	sleep 0.1
done
DOCS=$(curl -sf "http://$(cat "$SMOKE/addr10")/v1/health" | sed 's/.*"docs":\([0-9]*\).*/\1/')
kill -TERM "$DPID"
wait "$DPID" || true
[ "$DOCS" = "500" ] || { echo "verify: reopened tier daemon has $DOCS docs, want 500"; exit 1; }
echo "tier smoke: idle partitions frozen, drained, and recounted through the cold tier"

echo "verify: OK"
