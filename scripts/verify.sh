#!/usr/bin/env sh
# Tier-1 verification: build, vet, and the full test suite under the race
# detector. Run from the repo root (make verify does).
set -eu

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

# Telemetry regressions get a dedicated pass: the efficiency-exactness
# property test, the SetParallelism race test, and the trace lifecycle
# must hold under the race detector with more aggressive interleaving.
echo "== go test -race -count=2 telemetry suite"
go test -race -count=2 -run 'TestStreamingEfficiency|TestSetParallelismRace|TestTrace' \
	./internal/table ./internal/obs

echo "verify: OK"
