package cinderella

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cinderella/internal/core"
	"cinderella/internal/storage"
	"cinderella/internal/table"
)

// Tiered storage, durable half. The table layer freezes cold partitions
// into compressed read-only segments (see internal/table and
// internal/storage); this file makes those transitions survive a crash.
//
// Layout: a WAL at <path> gets a sibling directory <path>.tier/ holding
//
//	manifest.json   — {"version":1,"frozen":[pids]}; the commit record
//	cold-<pid>.seg  — one checksummed cold-segment image per frozen pid
//
// The WAL stays the row source of truth: freezing moves no rows and
// appends no WAL record. The manifest only records *which* partitions
// were frozen, and the images exist so recovery can verify the cold
// tier's integrity end to end. On reopen, the WAL is replayed first,
// every manifest-listed image is checksum-verified (a torn or corrupt
// image refuses the open with storage.ErrColdCorrupt — never a silent
// downgrade to hot), and the listed partitions are re-frozen from the
// replayed rows, rewriting the images.
//
// Crash ordering: freeze writes the image before the manifest, thaw
// rewrites the manifest before deleting the image. Either way a crash
// between the two steps leaves at worst an orphan image with no
// manifest entry, which recovery sweeps. A frozen partition can also be
// thawed *implicitly* (any mutation reaching it thaws it inside the
// table layer); the manifest then over-reports until the next explicit
// freeze, thaw, or reopen reconciles it — over-reporting is safe
// because recovery re-freezes from replayed rows, it never trusts the
// image for content.

// tierManifestVersion guards the on-disk tier layout.
const tierManifestVersion = 1

// tierManifest is the cold tier's commit record.
type tierManifest struct {
	Version int      `json:"version"`
	Frozen  []uint64 `json:"frozen"`
}

// tierDir returns the cold-tier directory for a WAL at path.
func tierDir(path string) string { return path + ".tier" }

// coldFileName names the image file for one frozen partition.
func coldFileName(pid uint64) string { return fmt.Sprintf("cold-%d.seg", pid) }

// TierState re-exports the per-partition tier report row.
type TierState = table.TierState

// TierStates snapshots every partition's storage tier, ordered by id.
func (t *Table) TierStates() []TierState { return t.inner.TierStates() }

// TierCounters returns the cumulative freeze and thaw transition counts.
func (t *Table) TierCounters() (freezes, thaws int64) { return t.inner.TierCounters() }

// FrozenPartitions returns the ids of all frozen partitions, ascending.
func (t *Table) FrozenPartitions() []uint64 {
	pids := t.inner.FrozenPartitions()
	out := make([]uint64, len(pids))
	for i, pid := range pids {
		out[i] = uint64(pid)
	}
	return out
}

// FreezePartition moves one partition into the compressed cold tier (see
// table.Table.FreezePartition). In-memory only; DurableTable overrides
// this with the persistent variant.
func (t *Table) FreezePartition(pid uint64) bool {
	return t.inner.FreezePartition(core.PartitionID(pid))
}

// ThawPartition moves one frozen partition back to the hot tier.
func (t *Table) ThawPartition(pid uint64) bool {
	return t.inner.ThawPartition(core.PartitionID(pid))
}

// FreezePartition freezes pid into the cold tier and persists the
// transition: the compressed image is written under <path>.tier/ first,
// then the manifest commits it. Returns (false, nil) when pid has no
// hot rows to freeze. A persistence failure rolls the partition back to
// the hot tier so memory and disk agree.
func (d *DurableTable) FreezePartition(pid uint64) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	if !d.inner.FreezePartition(core.PartitionID(pid)) {
		return false, nil
	}
	if err := d.persistTier(pid); err != nil {
		d.inner.ThawPartition(core.PartitionID(pid))
		return false, err
	}
	return true, nil
}

// ThawPartition thaws pid back into the hot tier and persists the
// transition (manifest first, then the image is swept). Returns
// (false, nil) when pid is not frozen. The thaw itself is never rolled
// back on a persistence failure: a stale manifest entry only makes
// recovery re-freeze the partition, it cannot lose rows.
func (d *DurableTable) ThawPartition(pid uint64) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	if !d.inner.ThawPartition(core.PartitionID(pid)) {
		return false, nil
	}
	if err := d.persistTier(); err != nil {
		return true, err
	}
	return true, nil
}

// persistTier reconciles <path>.tier/ with the table's current frozen
// set: images for the given pids are (re)written tmp+rename, the
// manifest is rewritten from the live frozen set, and image files for
// no-longer-frozen partitions are swept. With an empty frozen set the
// whole directory is removed. Callers hold d.mu.
func (d *DurableTable) persistTier(write ...uint64) error {
	frozen := d.inner.FrozenPartitions()
	dir := tierDir(d.path)
	if len(frozen) == 0 {
		return os.RemoveAll(dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, pid := range write {
		img := d.inner.FrozenImage(core.PartitionID(pid))
		if img == nil {
			continue
		}
		if err := atomicWrite(filepath.Join(dir, coldFileName(pid)), img); err != nil {
			return err
		}
	}
	m := tierManifest{Version: tierManifestVersion, Frozen: make([]uint64, len(frozen))}
	live := make(map[string]bool, len(frozen))
	for i, pid := range frozen {
		m.Frozen[i] = uint64(pid)
		live[coldFileName(uint64(pid))] = true
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if err := atomicWrite(filepath.Join(dir, "manifest.json"), append(data, '\n')); err != nil {
		return err
	}
	// Sweep images the manifest no longer references (thawed partitions,
	// leftovers from a crash between image write and manifest commit).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "cold-") || !strings.HasSuffix(name, ".seg") || live[name] {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// atomicWrite writes data to path via tmp+rename so readers (and
// recovery) never observe a half-written file.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// recoverTier restores the cold tier after the WAL replay: every
// manifest-listed image is checksum-verified (corruption refuses the
// open — the operator decides, the database never silently drops a
// tier), then the listed partitions are re-frozen from the replayed
// rows and the images rewritten. Partitions the replay no longer
// produces (all rows deleted, or a checkpointed log re-placed them) are
// dropped from the manifest. A tier directory without a manifest is a
// crash before the first freeze committed: swept.
func (d *DurableTable) recoverTier() error {
	dir := tierDir(d.path)
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if errors.Is(err, os.ErrNotExist) {
		return os.RemoveAll(dir)
	}
	if err != nil {
		return err
	}
	var m tierManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("cinderella: %s/manifest.json is torn or corrupt: %w", dir, err)
	}
	if m.Version != tierManifestVersion {
		return fmt.Errorf("cinderella: %s has tier version %d, this binary supports %d", dir, m.Version, tierManifestVersion)
	}
	var refrozen []uint64
	for _, pid := range m.Frozen {
		// Integrity gate: the image must decode and checksum end to end
		// even though the rows come from the WAL — a torn cold file is
		// data-loss evidence, not something to paper over.
		if _, err := storage.OpenColdSegmentFile(filepath.Join(dir, coldFileName(pid)), nil); err != nil {
			return fmt.Errorf("cinderella: cold tier of %s: %w", d.path, err)
		}
		if d.inner.FreezePartition(core.PartitionID(pid)) {
			refrozen = append(refrozen, pid)
		}
	}
	return d.persistTier(refrozen...)
}
