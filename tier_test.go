package cinderella

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"cinderella/internal/storage"
	"cinderella/internal/synopsis"
)

// tierCfg keeps the fixtures' partitioning deterministic and small.
var tierCfg = Config{Weight: 0.3, PartitionSizeLimit: 200}

// seedTierTable inserts two well-separated attribute families and
// returns the partition id of the {"cold_a","cold_b"} family.
func seedTierTable(t *testing.T, d *DurableTable, n int) uint64 {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := d.Insert(Doc{"hot_a": i, "hot_b": i}); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Insert(Doc{"cold_a": i, "cold_b": i}); err != nil {
			t.Fatal(err)
		}
	}
	aid := d.Dict().ID("cold_a")
	for _, pv := range d.inner.Partitions() {
		if synopsis.Intersects(pv.Synopsis, synopsis.Of(aid)) {
			return uint64(pv.ID)
		}
	}
	t.Fatal("no partition holds cold_a")
	return 0
}

// copyTree copies the WAL file and its .tier sibling directory to a new
// path — the freeze-then-kill(-9) simulation: whatever was durable on
// disk at the copy instant is exactly what recovery sees.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	copyFile(t, src, dst)
	entries, err := os.ReadDir(tierDir(src))
	if errors.Is(err, os.ErrNotExist) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(tierDir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		copyFile(t, filepath.Join(tierDir(src), e.Name()), filepath.Join(tierDir(dst), e.Name()))
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// sortedDocs canonicalizes a full scan for equality checks.
func sortedDocs(recs []Record) []Record {
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs
}

// TestDurableTierFreezeKillReopen is the tier's crash-safety
// centerpiece: freeze a partition, kill the process without a clean
// close, and recover with the exact row count, one partition still
// frozen, and one still hot.
func TestDurableTierFreezeKillReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	d := openDurable(t, path, tierCfg)
	coldPID := seedTierTable(t, d, 60)

	ok, err := d.FreezePartition(coldPID)
	if err != nil || !ok {
		t.Fatalf("freeze = %v, %v", ok, err)
	}
	if _, err := os.Stat(filepath.Join(tierDir(path), coldFileName(coldPID))); err != nil {
		t.Fatalf("cold image not on disk: %v", err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	before := sortedDocs(d.ScanAll())

	// Kill -9: copy the durable state aside while the table is still
	// open (no Close, no final flush beyond the explicit Sync above).
	crash := filepath.Join(dir, "crash.wal")
	copyTree(t, path, crash)
	d.Close()

	d2 := openDurable(t, crash, tierCfg)
	defer d2.Close()
	if got := d2.Len(); got != 120 {
		t.Fatalf("recovered %d rows, want 120", got)
	}
	if got := sortedDocs(d2.ScanAll()); len(got) != len(before) {
		t.Fatalf("recovered scan %d rows, want %d", len(got), len(before))
	}
	frozen := d2.FrozenPartitions()
	if len(frozen) != 1 || frozen[0] != coldPID {
		t.Fatalf("recovered frozen set %v, want [%d]", frozen, coldPID)
	}
	var hot, cold int
	for _, ts := range d2.TierStates() {
		if ts.Frozen {
			cold++
			if ts.ResidentBytes >= ts.RawBytes {
				t.Fatalf("recovered cold partition not compressed: %d >= %d", ts.ResidentBytes, ts.RawBytes)
			}
		} else {
			hot++
		}
	}
	if hot == 0 || cold == 0 {
		t.Fatalf("recovered tiers hot=%d cold=%d, want both nonzero", hot, cold)
	}
	// The frozen partition still answers queries.
	if got := d2.Query("cold_a"); len(got) != 60 {
		t.Fatalf("recovered cold query %d hits, want 60", len(got))
	}
}

// TestDurableTierCorruptColdRefuses: a flipped byte anywhere in a cold
// image makes recovery refuse the open with storage.ErrColdCorrupt —
// never a silent downgrade of the frozen partition to hot.
func TestDurableTierCorruptColdRefuses(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	d := openDurable(t, path, tierCfg)
	coldPID := seedTierTable(t, d, 40)
	if ok, err := d.FreezePartition(coldPID); err != nil || !ok {
		t.Fatalf("freeze = %v, %v", ok, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	img := filepath.Join(tierDir(path), coldFileName(coldPID))
	data, err := os.ReadFile(img)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(img, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenFile(path, tierCfg); !errors.Is(err, storage.ErrColdCorrupt) {
		t.Fatalf("open with corrupt cold image: %v, want ErrColdCorrupt", err)
	}
}

// TestDurableTierThawPersists: an explicit thaw commits the manifest
// change, and the last thaw removes the tier directory entirely.
func TestDurableTierThawPersists(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	d := openDurable(t, path, tierCfg)
	coldPID := seedTierTable(t, d, 40)
	if ok, err := d.FreezePartition(coldPID); err != nil || !ok {
		t.Fatalf("freeze = %v, %v", ok, err)
	}
	if ok, err := d.ThawPartition(coldPID); err != nil || !ok {
		t.Fatalf("thaw = %v, %v", ok, err)
	}
	if _, err := os.Stat(tierDir(path)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tier dir survives last thaw: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openDurable(t, path, tierCfg)
	defer d2.Close()
	if got := d2.FrozenPartitions(); len(got) != 0 {
		t.Fatalf("recovered frozen set %v, want empty", got)
	}
	if got := d2.Len(); got != 80 {
		t.Fatalf("recovered %d rows, want 80", got)
	}
}

// TestDurableTierImplicitThawRecovers: a mutation reaching a frozen
// partition thaws it inside the table layer without telling the durable
// layer; the manifest over-reports until the next reconcile. Recovery
// must still produce exact rows — the stale manifest entry only makes
// it re-freeze the (now mutated) partition from the replayed rows.
func TestDurableTierImplicitThawRecovers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	d := openDurable(t, path, tierCfg)
	coldPID := seedTierTable(t, d, 40)
	if ok, err := d.FreezePartition(coldPID); err != nil || !ok {
		t.Fatalf("freeze = %v, %v", ok, err)
	}
	victim := d.Query("cold_a")[0].ID
	if ok, err := d.Delete(victim); err != nil || !ok {
		t.Fatalf("delete through frozen partition = %v, %v", ok, err)
	}
	if got := d.FrozenPartitions(); len(got) != 0 {
		t.Fatalf("frozen set after implicit thaw %v, want empty", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openDurable(t, path, tierCfg)
	defer d2.Close()
	if got := d2.Len(); got != 79 {
		t.Fatalf("recovered %d rows, want 79", got)
	}
	if _, ok := d2.Get(victim); ok {
		t.Fatal("deleted row resurrected by tier recovery")
	}
	if got := d2.Query("cold_a"); len(got) != 39 {
		t.Fatalf("recovered cold query %d hits, want 39", len(got))
	}
}

// TestDurableTierOrphanImagesSwept: cold images without a manifest are
// a crash before the first freeze committed — recovery sweeps them and
// opens clean.
func TestDurableTierOrphanImagesSwept(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	d := openDurable(t, path, tierCfg)
	seedTierTable(t, d, 10)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(tierDir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tierDir(path), coldFileName(7)), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := openDurable(t, path, tierCfg)
	defer d2.Close()
	if got := d2.FrozenPartitions(); len(got) != 0 {
		t.Fatalf("frozen set %v from orphan images, want empty", got)
	}
	if _, err := os.Stat(tierDir(path)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphan tier dir not swept: %v", err)
	}
}

// TestDurableTierCheckpointKeepsTier: checkpointing rewrites the log
// and refreshes the tier images; the frozen set survives the reopen.
func TestDurableTierCheckpointKeepsTier(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.wal")
	d := openDurable(t, path, tierCfg)
	coldPID := seedTierTable(t, d, 40)
	if ok, err := d.FreezePartition(coldPID); err != nil || !ok {
		t.Fatalf("freeze = %v, %v", ok, err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := openDurable(t, path, tierCfg)
	defer d2.Close()
	if got := d2.Len(); got != 80 {
		t.Fatalf("recovered %d rows, want 80", got)
	}
	if got := d2.Query("cold_a"); len(got) != 40 {
		t.Fatalf("recovered cold query %d hits, want 40", len(got))
	}
}

// TestDurableTierFreezeReopenProperty drives three deterministic
// workload shapes through insert/delete/freeze/kill/reopen and checks
// the recovered scan is bit-identical to the pre-crash one.
func TestDurableTierFreezeReopenProperty(t *testing.T) {
	for seed := 1; seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "t.wal")
			d := openDurable(t, path, tierCfg)
			// Three attribute families, sized by seed.
			for i := 0; i < 30*seed; i++ {
				fam := (i*seed + i) % 3
				if _, err := d.Insert(Doc{
					fmt.Sprintf("fam%d_a", fam): i,
					fmt.Sprintf("fam%d_b", fam): i * seed,
				}); err != nil {
					t.Fatal(err)
				}
			}
			// Delete a seed-dependent slice.
			all := d.ScanAll()
			for i := 0; i < len(all); i += 7 + seed {
				if _, err := d.Delete(all[i].ID); err != nil {
					t.Fatal(err)
				}
			}
			// Freeze every other freezable partition.
			for i, ts := range d.TierStates() {
				if i%2 == 0 && ts.Entities > 0 {
					if _, err := d.FreezePartition(uint64(ts.Partition)); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := d.Sync(); err != nil {
				t.Fatal(err)
			}
			before := sortedDocs(d.ScanAll())
			frozenBefore := d.FrozenPartitions()

			crash := filepath.Join(dir, "crash.wal")
			copyTree(t, path, crash)
			d.Close()

			d2 := openDurable(t, crash, tierCfg)
			defer d2.Close()
			after := sortedDocs(d2.ScanAll())
			if len(after) != len(before) {
				t.Fatalf("recovered %d rows, want %d", len(after), len(before))
			}
			for i := range before {
				if before[i].ID != after[i].ID {
					t.Fatalf("row %d: id %d != %d", i, after[i].ID, before[i].ID)
				}
			}
			frozenAfter := d2.FrozenPartitions()
			if len(frozenAfter) != len(frozenBefore) {
				t.Fatalf("recovered frozen set %v, want %v", frozenAfter, frozenBefore)
			}
		})
	}
}
