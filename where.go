package cinderella

import (
	"fmt"

	"cinderella/internal/table"
)

// Cond is one value condition for QueryWhere: attribute Op value.
// Conditions combine conjunctively (AND). An entity satisfies a condition
// only if it instantiates the attribute.
type Cond struct {
	Attr  string
	Op    string // "=", "<", "<=", ">", ">="
	Value any    // int, int64, float64, or string
}

// Where is shorthand for building a Cond.
func Where(attr, op string, value any) Cond {
	return Cond{Attr: attr, Op: op, Value: value}
}

// QueryWhere returns all documents satisfying every condition. Partition
// pruning uses both attribute synopses and per-partition value zone maps,
// so range probes skip partitions whose values cannot match. Unknown
// attribute names match nothing.
func (t *Table) QueryWhere(conds ...Cond) ([]Record, QueryReport) {
	if len(conds) == 0 {
		panic("cinderella: QueryWhere needs at least one condition")
	}
	preds := make([]table.Pred, 0, len(conds))
	for _, c := range conds {
		attr, ok := t.dict.Lookup(c.Attr)
		if !ok {
			// The attribute has never been seen: nothing can match.
			return nil, QueryReport{}
		}
		op, err := parseOp(c.Op)
		if err != nil {
			panic("cinderella: " + err.Error())
		}
		v, err := toValue(c.Value)
		if err != nil || v.IsNull() {
			panic(fmt.Sprintf("cinderella: condition on %q: bad value %v", c.Attr, c.Value))
		}
		preds = append(preds, table.Pred{Attr: attr, Op: op, Value: v})
	}
	res, rep := t.inner.SelectWhere(preds)
	out := make([]Record, len(res))
	for i, r := range res {
		out[i] = Record{ID: r.ID, Doc: t.toDoc(r.Entity)}
	}
	return out, rep
}

func parseOp(op string) (table.CmpOp, error) {
	switch op {
	case "=", "==":
		return table.Eq, nil
	case "<":
		return table.Lt, nil
	case "<=":
		return table.Le, nil
	case ">":
		return table.Gt, nil
	case ">=":
		return table.Ge, nil
	}
	return 0, fmt.Errorf("unknown operator %q", op)
}

// RebuildZoneMaps recomputes exact per-partition value ranges after heavy
// churn (deletes and updates only widen the maintained ranges).
func (t *Table) RebuildZoneMaps() { t.inner.RebuildZoneMaps() }
